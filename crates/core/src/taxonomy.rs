//! The failure taxonomy of the study (paper §3–§5).
//!
//! These types are shared by the study dataset (`dup-study`), the tester's
//! triage report (`dup-tester`), and the checker's findings (`dup-checker`),
//! so that a failure DUPTester exposes is classified in exactly the terms of
//! Tables 2–4.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Issue-tracker priority (all studied systems except Cassandra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Most severe and urgent.
    Blocker,
    /// Severe.
    Critical,
    /// Default severity.
    Major,
    /// Low severity.
    Minor,
    /// Cosmetic.
    Trivial,
}

impl Priority {
    /// "High priority" as the paper uses it: Blocker or Critical.
    pub fn is_high(self) -> bool {
        matches!(self, Priority::Blocker | Priority::Critical)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Blocker => "Blocker",
            Priority::Critical => "Critical",
            Priority::Major => "Major",
            Priority::Minor => "Minor",
            Priority::Trivial => "Trivial",
        };
        f.write_str(s)
    }
}

/// Cassandra's three-level priority scheme (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CassandraPriority {
    /// Highest.
    Urgent,
    /// Default.
    Normal,
    /// Lowest.
    Low,
}

impl fmt::Display for CassandraPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CassandraPriority::Urgent => "Urgent",
            CassandraPriority::Normal => "Normal",
            CassandraPriority::Low => "Low",
        };
        f.write_str(s)
    }
}

/// End-user-visible symptom categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Symptom {
    /// All nodes crash, or the (HA-failover-defeating) master crash.
    WholeClusterDown,
    /// Severe service-quality degradation limited to the rolling-upgrade window.
    RollingUpgradeDegradation,
    /// Data loss or corruption.
    DataLossOrCorruption,
    /// Increased latency, wasted computation, etc.
    PerformanceDegradation,
    /// Part of the worker nodes down, or the secondary master down.
    PartOfClusterDown,
    /// Failed read/write requests, UI errors, etc.
    IncorrectResult,
    /// The report does not explain the symptom.
    Unknown,
}

impl Symptom {
    /// Table 2's row label.
    pub fn label(self) -> &'static str {
        match self {
            Symptom::WholeClusterDown => "Whole cluster down",
            Symptom::RollingUpgradeDegradation => {
                "Severe service quality degradation during rolling upgrade"
            }
            Symptom::DataLossOrCorruption => "Data loss and data corruption",
            Symptom::PerformanceDegradation => "Performance degradation",
            Symptom::PartOfClusterDown => "Part of cluster down",
            Symptom::IncorrectResult => "Incorrect service result",
            Symptom::Unknown => "Unknown",
        }
    }

    /// Whether the symptom is "easy to observe" in Finding 3's sense
    /// (node crashes and fatal exceptions, as opposed to subtle symptoms).
    pub fn easy_to_observe(self) -> bool {
        matches!(
            self,
            Symptom::WholeClusterDown
                | Symptom::PartOfClusterDown
                | Symptom::RollingUpgradeDegradation
                | Symptom::DataLossOrCorruption
        )
    }
}

/// The medium through which two versions interacted incompatibly (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataMedium {
    /// Files handed over through persistent storage (60% of incompatibilities).
    PersistentStorage,
    /// Transient network messages (40%); only manifests in rolling upgrades.
    NetworkMessage,
}

/// Fine-grained incompatibility category, the rows of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IncompatCategory {
    /// Syntax: data defined using a serialization library.
    SyntaxSerializationLib,
    /// Syntax: enum-typed data serialized by index.
    SyntaxEnum,
    /// Syntax: system-specific data with missing/incomplete deserializers.
    SyntaxSystemSpecific,
    /// Semantics: serialization-library data handled under wrong assumptions.
    SemanticsSerializationLibMishandling,
    /// Semantics: incomplete version checking and handling.
    SemanticsIncompleteVersionHandling,
    /// Semantics: other.
    SemanticsOther,
}

impl IncompatCategory {
    /// Returns `true` for the three syntax rows of Table 3.
    pub fn is_syntax(self) -> bool {
        matches!(
            self,
            IncompatCategory::SyntaxSerializationLib
                | IncompatCategory::SyntaxEnum
                | IncompatCategory::SyntaxSystemSpecific
        )
    }

    /// Table 3's row label.
    pub fn label(self) -> &'static str {
        match self {
            IncompatCategory::SyntaxSerializationLib => "data defined using serialization lib.",
            IncompatCategory::SyntaxEnum => "enum",
            IncompatCategory::SyntaxSystemSpecific => "system-specific data",
            IncompatCategory::SemanticsSerializationLibMishandling => {
                "mishandling of serialization lib."
            }
            IncompatCategory::SemanticsIncompleteVersionHandling => "incomplete version handling",
            IncompatCategory::SemanticsOther => "other semantics issue",
        }
    }
}

/// Top-level root-cause categories (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RootCause {
    /// Incompatible cross-version interaction (63%).
    IncompatibleInteraction {
        /// What data carried the incompatibility.
        medium: DataMedium,
        /// Which Table 3 row it falls in.
        category: IncompatCategory,
    },
    /// Unexpected interaction between the upgrade operation and a regular
    /// operation (33%).
    BrokenUpgradeOperation,
    /// A configuration that worked in the old version no longer works (3%).
    Misconfiguration,
    /// The system stops working with a library after an upgrade (2%).
    BrokenDependency,
}

impl RootCause {
    /// Short label used in Table 5-style reports.
    pub fn short_label(&self) -> &'static str {
        match self {
            RootCause::IncompatibleInteraction { category, .. } => {
                if category.is_syntax() {
                    "Data-syntax Incomp."
                } else {
                    "Data-semantics Incomp."
                }
            }
            RootCause::BrokenUpgradeOperation => "Broken Upgrade Op.",
            RootCause::Misconfiguration => "Misconfiguration",
            RootCause::BrokenDependency => "Broken Dependency",
        }
    }
}

/// How the failure-triggering workload relates to existing test assets (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadCoverage {
    /// Stress-testing operations with default configuration suffice.
    StressDefault,
    /// Needs a non-default configuration that an existing unit test covers.
    ConfigCoveredByUnitTest,
    /// Needs a non-default configuration not covered anywhere.
    ConfigUncovered,
    /// Needs special operations that existing unit tests cover.
    OpsCoveredByUnitTest,
    /// Needs special operations not covered anywhere.
    OpsUncovered,
}

/// Which upgrade scenario exposes a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpgradeKind {
    /// Whole service stops, restarts on the new version.
    FullStop,
    /// Nodes take turns restarting on the new version.
    Rolling,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_high_predicate() {
        assert!(Priority::Blocker.is_high());
        assert!(Priority::Critical.is_high());
        assert!(!Priority::Major.is_high());
        assert!(!Priority::Trivial.is_high());
    }

    #[test]
    fn symptom_labels_match_table_2() {
        assert_eq!(Symptom::WholeClusterDown.label(), "Whole cluster down");
        assert!(Symptom::RollingUpgradeDegradation
            .label()
            .contains("rolling upgrade"));
    }

    #[test]
    fn syntax_vs_semantics_split() {
        assert!(IncompatCategory::SyntaxEnum.is_syntax());
        assert!(IncompatCategory::SyntaxSerializationLib.is_syntax());
        assert!(IncompatCategory::SyntaxSystemSpecific.is_syntax());
        assert!(!IncompatCategory::SemanticsOther.is_syntax());
        assert!(!IncompatCategory::SemanticsIncompleteVersionHandling.is_syntax());
    }

    #[test]
    fn root_cause_short_labels_match_table_5() {
        let syntax = RootCause::IncompatibleInteraction {
            medium: DataMedium::NetworkMessage,
            category: IncompatCategory::SyntaxSerializationLib,
        };
        assert_eq!(syntax.short_label(), "Data-syntax Incomp.");
        let semantics = RootCause::IncompatibleInteraction {
            medium: DataMedium::PersistentStorage,
            category: IncompatCategory::SemanticsIncompleteVersionHandling,
        };
        assert_eq!(semantics.short_label(), "Data-semantics Incomp.");
        assert_eq!(
            RootCause::BrokenUpgradeOperation.short_label(),
            "Broken Upgrade Op."
        );
        assert_eq!(
            RootCause::BrokenDependency.short_label(),
            "Broken Dependency"
        );
    }

    #[test]
    fn priorities_order_by_urgency() {
        assert!(Priority::Blocker < Priority::Critical);
        assert!(CassandraPriority::Urgent < CassandraPriority::Low);
    }
}
