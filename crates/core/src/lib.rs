//! # dup-core — shared vocabulary of the DUP toolchain
//!
//! Types shared by the study (`dup-study`), the tester (`dup-tester`), the
//! checker (`dup-checker`), and the miniature systems:
//!
//! - [`VersionId`] / [`VersionGap`] — release numbering and Table 4 gap
//!   classification, plus [`upgrade_pairs`] implementing Finding 9's
//!   consecutive-pair enumeration;
//! - the failure taxonomy ([`RootCause`], [`Symptom`], [`Priority`], …)
//!   used to classify every failure in the study and every failure the
//!   tester exposes;
//! - the [`SystemUnderTest`] trait, DUPTester's view of a target system.
//!
//! # Examples
//!
//! ```
//! use dup_core::{VersionId, VersionGap};
//! let old: VersionId = "2.2.0".parse().unwrap();
//! let new: VersionId = "2.3.3".parse().unwrap();
//! assert_eq!(old.gap_to(&new), VersionGap::Minor(1));
//! assert!(old.is_consecutive_upgrade(&new));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sut;
mod taxonomy;
mod version;

pub use crate::sut::{
    ClientOp, Config, NodeSetup, SystemUnderTest, TranslationTable, UnitStatement, UnitTest,
    WorkloadPhase,
};
pub use crate::taxonomy::{
    CassandraPriority, DataMedium, IncompatCategory, Priority, RootCause, Symptom, UpgradeKind,
    WorkloadCoverage,
};
pub use crate::version::{upgrade_pairs, VersionGap, VersionId, VersionParseError};
