//! The system-under-test interface DUPTester drives.
//!
//! A [`SystemUnderTest`] packages everything DUPTester needs from a target
//! system (paper §6.1): factories for version-specific node processes,
//! the client-visible stress workload, the unit-test corpus, and the
//! translation table that maps internal unit-test calls to client commands
//! (§6.1.3).
//!
//! Client traffic is *textual* by convention — requests are UTF-8 command
//! strings and responses start with `OK` or `ERR` — mirroring how DUPTester
//! drives real systems through client-side scripts (cqlsh-style shells).
//! Inter-node messages and storage files, in contrast, use real wire
//! formats from `dup-wire`, because that is where the studied
//! incompatibilities live.

use crate::version::VersionId;
use dup_simnet::{HostStorage, Process};
use std::collections::BTreeMap;

/// Key-value configuration handed to every node (and preserved across
/// upgrades, which is itself the trigger of config-type failures like
/// KAFKA-6238).
pub type Config = BTreeMap<String, String>;

/// Everything a node process factory needs to know about its place in the
/// cluster.
#[derive(Debug, Clone)]
pub struct NodeSetup {
    /// This node's index (== its `dup_simnet` node id under DUPTester).
    pub index: u32,
    /// Total nodes in the cluster at spawn time.
    pub cluster_size: u32,
    /// Configuration in effect.
    pub config: Config,
}

impl NodeSetup {
    /// Creates a setup with the given index/size and empty configuration.
    pub fn new(index: u32, cluster_size: u32) -> Self {
        NodeSetup {
            index,
            cluster_size,
            config: Config::new(),
        }
    }

    /// Returns the ids of all peer nodes (everyone but `self.index`).
    pub fn peers(&self) -> Vec<u32> {
        (0..self.cluster_size)
            .filter(|&i| i != self.index)
            .collect()
    }
}

/// One client-side operation: a textual command sent to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOp {
    /// Target node index.
    pub node: u32,
    /// Command text (system-specific, e.g. `"PUT k v"` or `"CREATE TABLE t"`).
    pub command: String,
}

impl ClientOp {
    /// Creates an operation.
    pub fn new(node: u32, command: impl Into<String>) -> Self {
        ClientOp {
            node,
            command: command.into(),
        }
    }
}

/// When in the upgrade scenario a workload batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadPhase {
    /// On the old-version cluster, before any node is upgraded.
    BeforeUpgrade,
    /// While versions are mixed (rolling upgrade / new-node-join).
    DuringUpgrade,
    /// After every node runs the new version (reads back pre-upgrade data —
    /// the probe that catches persistent-data loss like HDFS-5988).
    AfterUpgrade,
}

/// One statement of a unit test, in the internal-call DSL (§6.1.3).
///
/// `let snapshot = createSnapshot(ks1)` becomes
/// `UnitStatement { var: Some("snapshot"), call: "createSnapshot", args: ["$ks1"] }`.
/// Arguments beginning with `$` reference variables bound by earlier
/// statements; the translator uses this for dependency-aware omission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitStatement {
    /// Variable bound by this statement, if any.
    pub var: Option<String>,
    /// Internal function or test-harness method invoked.
    pub call: String,
    /// Arguments; `$name` references a variable.
    pub args: Vec<String>,
}

impl UnitStatement {
    /// Creates a statement with no bound variable.
    pub fn call(call: &str, args: &[&str]) -> Self {
        UnitStatement {
            var: None,
            call: call.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Creates a statement binding `var`.
    pub fn bind(var: &str, call: &str, args: &[&str]) -> Self {
        UnitStatement {
            var: Some(var.to_string()),
            ..Self::call(call, args)
        }
    }

    /// Names of variables this statement reads.
    pub fn uses(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|a| a.strip_prefix('$'))
    }
}

/// A unit test: a named statement list plus the configuration it runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitTest {
    /// Test name (e.g. `"testCachedPreparedStatements"`).
    pub name: String,
    /// Statements in order.
    pub statements: Vec<UnitStatement>,
    /// Non-default configuration the test sets, if any (Finding 13's lever).
    pub config: Config,
}

impl UnitTest {
    /// Creates a unit test with default configuration.
    pub fn new(name: &str, statements: Vec<UnitStatement>) -> Self {
        UnitTest {
            name: name.to_string(),
            statements,
            config: Config::new(),
        }
    }

    /// Sets a configuration key; chains.
    pub fn with_config(mut self, key: &str, value: &str) -> Self {
        self.config.insert(key.to_string(), value.to_string());
        self
    }
}

/// A translation rule: how one internal call maps to a client command.
///
/// The template may contain `{0}`, `{1}`, … argument placeholders. A call
/// with no rule is untranslatable; the DUPTester translator omits it *and
/// every statement depending on it* (§6.1.3).
#[derive(Debug, Clone, Default)]
pub struct TranslationTable {
    rules: BTreeMap<String, String>,
}

impl TranslationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule mapping `call` to a client-command `template`; chains.
    pub fn rule(mut self, call: &str, template: &str) -> Self {
        self.rules.insert(call.to_string(), template.to_string());
        self
    }

    /// Returns the template for `call`, if one exists.
    pub fn template(&self, call: &str) -> Option<&str> {
        self.rules.get(call).map(String::as_str)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// A distributed system DUPTester can exercise.
///
/// `Sync` is a supertrait so campaign engines can fan test cases out across
/// worker threads sharing one `&dyn SystemUnderTest`; implementations are
/// expected to be stateless descriptions of the system (all four bundled
/// SUTs are unit structs), with per-run state living in the spawned
/// [`Process`]es.
pub trait SystemUnderTest: Sync {
    /// System name (`"cassandra-mini"`, …).
    fn name(&self) -> &'static str;

    /// Released versions, oldest first.
    fn versions(&self) -> Vec<VersionId>;

    /// Cluster size to simulate (Finding 10: ≤3 suffices).
    fn cluster_size(&self) -> u32 {
        3
    }

    /// Default configuration.
    fn default_config(&self) -> Config {
        Config::new()
    }

    /// Builds the node process for `version`.
    fn spawn(&self, version: VersionId, setup: &NodeSetup) -> Box<dyn Process>;

    /// Streams the stress-test workload for the given phase, seeded
    /// deterministically, into `emit` — one op at a time, so callers drive
    /// traffic from pooled buffers (or none at all) instead of receiving a
    /// freshly allocated `Vec` per phase.
    ///
    /// `client_version` is the version of the *client library* issuing the
    /// ops (usually the old version during upgrades — the Kafka-7403 shape).
    fn stress_ops(
        &self,
        seed: u64,
        phase: WorkloadPhase,
        client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    );

    /// Renders one open-loop arrival as a client command: `key` is the
    /// Zipf-drawn key, `client` the logical client id, and `read` the op
    /// kind. The default routes a health probe by key so systems without an
    /// override still accept open-loop traffic.
    fn open_loop_op(
        &self,
        key: u64,
        _client: u64,
        _read: bool,
        _client_version: VersionId,
    ) -> ClientOp {
        ClientOp::new(
            (key % u64::from(self.cluster_size().max(1))) as u32,
            "HEALTH",
        )
    }

    /// Unit-test corpus (may be empty).
    fn unit_tests(&self) -> Vec<UnitTest> {
        Vec::new()
    }

    /// Translation table for the unit-test translator (may be empty).
    fn translation(&self) -> TranslationTable {
        TranslationTable::new()
    }

    /// Executes one unit-test statement *in place* against a node's storage,
    /// as the original in-JVM unit test would (DUPTester's second unit-test
    /// scheme, §6.1.2). Returns `Err` if this system does not support the
    /// call.
    fn run_unit_statement(
        &self,
        _version: VersionId,
        _statement: &UnitStatement,
        _storage: &mut HostStorage,
    ) -> Result<(), String> {
        Err("in-place unit execution not supported".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_setup_peers() {
        let s = NodeSetup::new(1, 3);
        assert_eq!(s.peers(), vec![0, 2]);
        let solo = NodeSetup::new(0, 1);
        assert!(solo.peers().is_empty());
    }

    #[test]
    fn unit_statement_variable_uses() {
        let s = UnitStatement::bind("t", "createTable", &["$ks", "name"]);
        assert_eq!(s.var.as_deref(), Some("t"));
        let uses: Vec<_> = s.uses().collect();
        assert_eq!(uses, vec!["ks"]);
    }

    #[test]
    fn unit_test_config_chaining() {
        let t = UnitTest::new("t", vec![]).with_config("strategy", "OldNetworkTopologyStrategy");
        assert_eq!(
            t.config.get("strategy").map(String::as_str),
            Some("OldNetworkTopologyStrategy")
        );
    }

    #[test]
    fn translation_table_lookup() {
        let t = TranslationTable::new().rule("execute", "CQL {0}");
        assert_eq!(t.template("execute"), Some("CQL {0}"));
        assert_eq!(t.template("internalOnly"), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(TranslationTable::new().is_empty());
    }

    #[test]
    fn client_op_construction() {
        let op = ClientOp::new(2, "PUT k v");
        assert_eq!(op.node, 2);
        assert_eq!(op.command, "PUT k v");
    }
}
