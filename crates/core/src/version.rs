//! Release version identifiers and version gaps.
//!
//! All eight studied systems use a `<major>.<minor>.<bug-fix>` numbering
//! scheme (paper §5.1). [`VersionGap`] classifies the distance between two
//! releases exactly the way Table 4 does, which is what lets DUPTester
//! restrict itself to the O(N) consecutive pairs that expose >80% of the
//! studied failures (Finding 9).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A three-component release version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
    /// Bug-fix component.
    pub patch: u32,
}

impl VersionId {
    /// Creates a version.
    pub const fn new(major: u32, minor: u32, patch: u32) -> Self {
        VersionId {
            major,
            minor,
            patch,
        }
    }

    /// Classifies the gap from `self` (the older release) to `newer`.
    pub fn gap_to(&self, newer: &VersionId) -> VersionGap {
        if newer.major != self.major {
            VersionGap::Major(newer.major.abs_diff(self.major))
        } else if newer.minor != self.minor {
            VersionGap::Minor(newer.minor.abs_diff(self.minor))
        } else if newer.patch != self.patch {
            VersionGap::BugFixOnly
        } else {
            VersionGap::Same
        }
    }

    /// Returns `true` if upgrading `self → newer` crosses consecutive
    /// major or minor versions (gap of exactly one step).
    pub fn is_consecutive_upgrade(&self, newer: &VersionId) -> bool {
        matches!(
            self.gap_to(newer),
            VersionGap::Major(1) | VersionGap::Minor(1)
        )
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// Error returned when a version string does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionParseError(pub String);

impl fmt::Display for VersionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid version string '{}'", self.0)
    }
}

impl std::error::Error for VersionParseError {}

impl FromStr for VersionId {
    type Err = VersionParseError;

    /// Parses `"3.11.4"`, `"3.11"` (patch 0), or `"4"` (minor and patch 0).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let bad = || VersionParseError(s.to_string());
        let major = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let minor = match parts.next() {
            Some(p) => p.parse().map_err(|_| bad())?,
            None => 0,
        };
        let patch = match parts.next() {
            Some(p) => p.parse().map_err(|_| bad())?,
            None => 0,
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(VersionId::new(major, minor, patch))
    }
}

/// The distance between two releases, in Table 4's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VersionGap {
    /// Different major versions, by this many steps.
    Major(u32),
    /// Same major, different minor, by this many steps.
    Minor(u32),
    /// Same major and minor, different bug-fix version ("<1" in Table 4).
    BugFixOnly,
    /// Identical versions.
    Same,
}

impl fmt::Display for VersionGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionGap::Major(n) => write!(f, "major gap {n}"),
            VersionGap::Minor(n) => write!(f, "minor gap {n}"),
            VersionGap::BugFixOnly => write!(f, "bug-fix gap"),
            VersionGap::Same => write!(f, "same version"),
        }
    }
}

/// Enumerates the upgrade pairs DUPTester tests for a release history:
/// consecutive pairs (gap 1) and, when `include_gap_two` is set, pairs at
/// distance 2 — together covering ~90% of the studied failures (Finding 9).
pub fn upgrade_pairs(versions: &[VersionId], include_gap_two: bool) -> Vec<(VersionId, VersionId)> {
    let mut sorted = versions.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut pairs = Vec::new();
    for w in sorted.windows(2) {
        pairs.push((w[0], w[1]));
    }
    if include_gap_two {
        for w in sorted.windows(3) {
            pairs.push((w[0], w[2]));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let v: VersionId = "3.11.4".parse().unwrap();
        assert_eq!(v, VersionId::new(3, 11, 4));
        assert_eq!(v.to_string(), "3.11.4");
        assert_eq!("2.1".parse::<VersionId>().unwrap(), VersionId::new(2, 1, 0));
        assert_eq!("4".parse::<VersionId>().unwrap(), VersionId::new(4, 0, 0));
        assert!("x.y".parse::<VersionId>().is_err());
        assert!("1.2.3.4".parse::<VersionId>().is_err());
        assert!("".parse::<VersionId>().is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut vs = vec![
            VersionId::new(2, 0, 0),
            VersionId::new(1, 2, 9),
            VersionId::new(1, 10, 0),
            VersionId::new(1, 2, 10),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                VersionId::new(1, 2, 9),
                VersionId::new(1, 2, 10),
                VersionId::new(1, 10, 0),
                VersionId::new(2, 0, 0),
            ]
        );
    }

    #[test]
    fn gap_classification_matches_table_4() {
        let v = |s: &str| s.parse::<VersionId>().unwrap();
        assert_eq!(v("0.22.0").gap_to(&v("0.24.0")), VersionGap::Minor(2));
        assert_eq!(v("1.2.0").gap_to(&v("2.0.0")), VersionGap::Major(1));
        assert_eq!(v("2.0.0").gap_to(&v("4.0.0")), VersionGap::Major(2));
        assert_eq!(v("3.11.4").gap_to(&v("3.11.9")), VersionGap::BugFixOnly);
        assert_eq!(v("3.11.4").gap_to(&v("3.11.4")), VersionGap::Same);
        assert_eq!(v("2.2.0").gap_to(&v("2.3.3")), VersionGap::Minor(1));
    }

    #[test]
    fn consecutive_upgrade_predicate() {
        let v = |s: &str| s.parse::<VersionId>().unwrap();
        assert!(v("1.1.0").is_consecutive_upgrade(&v("1.2.0")));
        assert!(v("1.2.0").is_consecutive_upgrade(&v("2.0.0")));
        assert!(!v("1.1.0").is_consecutive_upgrade(&v("1.3.0")));
        assert!(!v("1.1.0").is_consecutive_upgrade(&v("1.1.5")));
    }

    #[test]
    fn upgrade_pairs_consecutive_and_gap_two() {
        let vs: Vec<VersionId> = ["1.1.0", "1.2.0", "2.0.0", "2.1.0"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let pairs = upgrade_pairs(&vs, false);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (vs[0], vs[1]));
        let with_two = upgrade_pairs(&vs, true);
        assert_eq!(with_two.len(), 5);
        assert!(with_two.contains(&(vs[0], vs[2])));
        assert!(with_two.contains(&(vs[1], vs[3])));
    }

    #[test]
    fn upgrade_pairs_dedups_input() {
        let vs: Vec<VersionId> = ["1.0.0", "1.0.0", "1.1.0"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(upgrade_pairs(&vs, false).len(), 1);
    }
}
