//! Replays the paper's two figures.
//!
//! - **Figure 1** (HDFS-11856): the write-pipeline timeline — a DataNode
//!   announces its upgrade restart, the restart outlives the tolerance
//!   window, the NameNode marks it bad permanently, and newly written
//!   blocks stay under-replicated even after the DataNode returns.
//! - **Figure 2** (HBASE-25238): the `ReplicationLoadSink` proto diff and
//!   the checker error it produces.
//!
//! Run with `cargo bench -p dup-bench --bench repro_figures`.

use dup_checker::compare_files;
use dup_core::{NodeSetup, VersionId};
use dup_dfs::{DataNode, NameNode};
use dup_idl::parse_proto;
use dup_simnet::{Process, Sim, SimDuration};

fn v(s: &str) -> VersionId {
    s.parse().expect("static version")
}

fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
    sim.rpc(
        node,
        text.as_bytes().to_vec().into(),
        SimDuration::from_secs(5),
    )
    .map(|b| String::from_utf8_lossy(&b).into_owned())
    .unwrap_or_else(|| "(timeout)".to_string())
}

fn figure1() {
    println!("=== Figure 1 — HDFS-11856: upgraded DataNode marked bad permanently ===\n");
    let mut sim = Sim::new(42);
    let n = 3u32;
    for i in 0..n {
        let setup = NodeSetup::new(i, n);
        let proc: Box<dyn Process> = if i == 0 {
            Box::new(NameNode::new(v("2.8.0"), setup))
        } else {
            Box::new(DataNode::new(v("2.8.0"), setup))
        };
        let id = sim.add_node(&format!("dfs-host-{i}"), "2.8.0", proc);
        sim.start_node(id).expect("fresh node starts");
    }
    sim.run_for(SimDuration::from_secs(1));
    println!("[{}] cluster up; client writes /pipeline/a", sim.now());
    println!("      -> {}", cmd(&mut sim, 0, "WRITE /pipeline/a data1"));

    println!(
        "[{}] dn-2 begins its upgrade restart (announces, goes down)",
        sim.now()
    );
    sim.stop_node(2).expect("dn-2 stops");
    sim.run_for(SimDuration::from_millis(3500));

    println!(
        "[{}] restart has exceeded the 3 s tolerance; client writes /pipeline/b",
        sim.now()
    );
    println!("      -> {}", cmd(&mut sim, 0, "WRITE /pipeline/b data2"));

    sim.install(
        2,
        "2.8.0",
        Box::new(DataNode::new(v("2.8.0"), NodeSetup::new(2, n))),
    )
    .expect("reinstall");
    sim.start_node(2).expect("dn-2 restarts");
    sim.run_for(SimDuration::from_secs(8));
    println!(
        "[{}] dn-2 is back and heartbeating — but it was marked bad permanently",
        sim.now()
    );
    println!(
        "      CHECK /pipeline/b -> {}",
        cmd(&mut sim, 0, "CHECK /pipeline/b")
    );

    println!("\nrelevant NameNode log lines:");
    for r in sim.logs().matching("bad permanently") {
        println!("  {r}");
    }
    println!();
}

fn figure2() {
    println!("=== Figure 2 — HBASE-25238: ReplicationLoadSink proto diff ===\n");
    let old_src = r#"message ReplicationLoadSink {
    required uint64 ageOfLastAppliedOp = 1;
}"#;
    let new_src = r#"message ReplicationLoadSink {
    required uint64 ageOfLastAppliedOp = 1;
    required uint64 timestampStarted = 3;
}"#;
    println!("--- HBase 2.2.0 ---\n{old_src}\n\n--- HBase 2.3.3 ---\n{new_src}\n");
    let old = parse_proto(old_src).expect("old parses");
    let new = parse_proto(new_src).expect("new parses");
    println!("DUPChecker output:");
    for violation in compare_files(&old, &new) {
        println!("  {violation}");
    }
}

fn main() {
    figure1();
    figure2();
}
