//! Criterion microbenchmarks of the wire-format substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dup_wire::{
    proto, thrift, EnumDescriptor, FieldDescriptor, FieldType, Frame, MessageDescriptor,
    MessageValue, Schema, Value,
};

fn schema() -> Schema {
    Schema::new()
        .with_message(
            MessageDescriptor::new("Heartbeat")
                .with(FieldDescriptor::required(1, "node", FieldType::Uint32))
                .with(FieldDescriptor::repeated(2, "blocks", FieldType::Uint64))
                .with(FieldDescriptor::repeated(
                    3,
                    "storages",
                    FieldType::Enum("StorageType".into()),
                ))
                .with(FieldDescriptor::required(
                    4,
                    "committedTxnId",
                    FieldType::Uint64,
                ))
                .with(FieldDescriptor::optional(5, "note", FieldType::Str)),
        )
        .with_enum(EnumDescriptor::new(
            "StorageType",
            &[("DISK", 0), ("SSD", 1), ("ARCHIVE", 2)],
        ))
}

fn heartbeat(blocks: usize) -> MessageValue {
    let mut m = MessageValue::new("Heartbeat")
        .set("node", Value::U32(7))
        .set("committedTxnId", Value::U64(123456))
        .set("note", Value::Str("steady-state heartbeat".into()));
    for i in 0..blocks {
        m.push_mut("blocks", Value::U64(1_000_000 + i as u64));
    }
    m.push_mut("storages", Value::Enum(0));
    m.push_mut("storages", Value::Enum(2));
    m
}

fn bench_wire(c: &mut Criterion) {
    let schema = schema();
    for blocks in [8usize, 128] {
        let value = heartbeat(blocks);
        let proto_bytes = proto::encode(&schema, &value).expect("encodes");
        let thrift_bytes = thrift::encode(&schema, &value).expect("encodes");

        let mut group = c.benchmark_group(format!("wire/{blocks}blocks"));
        group.throughput(Throughput::Bytes(proto_bytes.len() as u64));
        group.bench_function("proto_encode", |b| {
            b.iter(|| proto::encode(&schema, &value).expect("encodes"))
        });
        group.bench_function("proto_decode", |b| {
            b.iter(|| proto::decode(&schema, "Heartbeat", &proto_bytes).expect("decodes"))
        });
        group.bench_function("thrift_encode", |b| {
            b.iter(|| thrift::encode(&schema, &value).expect("encodes"))
        });
        group.bench_function("thrift_decode", |b| {
            b.iter(|| thrift::decode(&schema, "Heartbeat", &thrift_bytes).expect("decodes"))
        });
        group.bench_function("frame_roundtrip", |b| {
            b.iter_batched(
                || proto_bytes.clone(),
                |bytes| {
                    let f = Frame::new(12, "heartbeat", bytes);
                    Frame::decode(&f.encode()).expect("decodes")
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
