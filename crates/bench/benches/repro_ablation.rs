//! Ablation: how much each DUPTester design choice contributes.
//!
//! The paper motivates each ingredient separately — the three scenarios
//! (§6.1.1), stress vs unit-test workloads (Findings 12–13, §6.1.4's two
//! unit-test-only Cassandra bugs), seed sweeps for the timing-dependent
//! ~11% (Finding 11), and consecutive-pair enumeration (Finding 9). This
//! harness re-runs the kvstore campaign with each ingredient removed and
//! reports the failures that disappear.
//!
//! Run with `cargo bench -p dup-bench --bench repro_ablation`.

use dup_tester::{catalog, Campaign, CampaignBuilder, CampaignReport, Scenario};

fn recall_line(label: &str, report: &CampaignReport) -> usize {
    let (caught, missed) = catalog::recall(report);
    println!(
        "{label:<42} {:>2} distinct failures, recall {}/{}{}",
        report.failures.len(),
        caught.len(),
        caught.len() + missed.len(),
        if missed.is_empty() {
            String::new()
        } else {
            format!("  missed: {missed:?}")
        }
    );
    caught.len()
}

fn main() {
    let sut = dup_kvstore::KvStoreSystem;
    println!("=== Ablation: DUPTester ingredients on cassandra-mini ===\n");

    // Every variant shares the full configuration's axes and removes (or
    // adds) exactly one ingredient.
    fn full(sut: &dup_kvstore::KvStoreSystem) -> CampaignBuilder<'_> {
        Campaign::builder(sut)
            .seeds([1, 2, 3, 4])
            .scenarios(Scenario::paper())
    }
    let baseline = recall_line("full configuration", &full(&sut).run());

    let r = full(&sut).unit_tests(false).run();
    let c = recall_line("without unit-test workloads", &r);
    println!(
        "  -> unit tests contribute {} of {} seeded bugs (paper: CASSANDRA-16292/16301 \
         were unit-test-only)\n",
        baseline - c,
        baseline
    );

    let r = full(&sut).scenarios([Scenario::FullStop]).run();
    let c = recall_line("full-stop scenario only", &r);
    println!(
        "  -> rolling-only bugs lost: {} (network incompatibilities need mixed versions)\n",
        baseline - c
    );

    recall_line(
        "rolling scenario only",
        &full(&sut).scenarios([Scenario::Rolling]).run(),
    );
    println!();

    let r = full(&sut).seeds([1]).run();
    let c = recall_line("single seed", &r);
    println!(
        "  -> timing-dependent bugs possibly lost: {} (Finding 11: ~11% need timing)\n",
        baseline - c
    );

    let r = full(&sut).gap_two(true).run();
    recall_line("with gap-2 pairs (Finding 9's +9%)", &r);
    println!(
        "  -> cases grow from consecutive-only to include distance-2 pairs \
         ({} cases total)",
        r.cases_run
    );
}
