//! Ablation: how much each DUPTester design choice contributes.
//!
//! The paper motivates each ingredient separately — the three scenarios
//! (§6.1.1), stress vs unit-test workloads (Findings 12–13, §6.1.4's two
//! unit-test-only Cassandra bugs), seed sweeps for the timing-dependent
//! ~11% (Finding 11), and consecutive-pair enumeration (Finding 9). This
//! harness re-runs the kvstore campaign with each ingredient removed and
//! reports the failures that disappear.
//!
//! Run with `cargo bench -p dup-bench --bench repro_ablation`.

use dup_tester::{catalog, Campaign, CampaignConfig, CampaignReport, Scenario};

fn recall_line(label: &str, report: &CampaignReport) -> usize {
    let (caught, missed) = catalog::recall(report);
    println!(
        "{label:<42} {:>2} distinct failures, recall {}/{}{}",
        report.failures.len(),
        caught.len(),
        caught.len() + missed.len(),
        if missed.is_empty() {
            String::new()
        } else {
            format!("  missed: {missed:?}")
        }
    );
    caught.len()
}

fn main() {
    let sut = dup_kvstore::KvStoreSystem;
    println!("=== Ablation: DUPTester ingredients on cassandra-mini ===\n");

    let full = CampaignConfig {
        seeds: vec![1, 2, 3, 4],
        scenarios: Scenario::ALL.to_vec(),
        ..CampaignConfig::default()
    };
    let baseline = recall_line(
        "full configuration",
        &Campaign::new(&sut, full.clone()).run(),
    );

    let no_units = CampaignConfig {
        use_unit_tests: false,
        ..full.clone()
    };
    let r = Campaign::new(&sut, no_units).run();
    let c = recall_line("without unit-test workloads", &r);
    println!(
        "  -> unit tests contribute {} of {} seeded bugs (paper: CASSANDRA-16292/16301 \
         were unit-test-only)\n",
        baseline - c,
        baseline
    );

    let full_stop_only = CampaignConfig {
        scenarios: vec![Scenario::FullStop],
        ..full.clone()
    };
    let r = Campaign::new(&sut, full_stop_only).run();
    let c = recall_line("full-stop scenario only", &r);
    println!(
        "  -> rolling-only bugs lost: {} (network incompatibilities need mixed versions)\n",
        baseline - c
    );

    let rolling_only = CampaignConfig {
        scenarios: vec![Scenario::Rolling],
        ..full.clone()
    };
    recall_line(
        "rolling scenario only",
        &Campaign::new(&sut, rolling_only).run(),
    );
    println!();

    let one_seed = CampaignConfig {
        seeds: vec![1],
        ..full.clone()
    };
    let r = Campaign::new(&sut, one_seed).run();
    let c = recall_line("single seed", &r);
    println!(
        "  -> timing-dependent bugs possibly lost: {} (Finding 11: ~11% need timing)\n",
        baseline - c
    );

    let gap2 = CampaignConfig {
        include_gap_two: true,
        ..full
    };
    let r = Campaign::new(&sut, gap2).run();
    recall_line("with gap-2 pairs (Finding 9's +9%)", &r);
    println!(
        "  -> cases grow from consecutive-only to include distance-2 pairs \
         ({} cases total)",
        r.cases_run
    );
}
