//! Regenerates the study's Tables 1–4 and Findings 1–13 (paper §2–§5).
//!
//! Run with `cargo bench -p dup-bench --bench repro_tables`.

fn main() {
    let ds = dup_study::dataset();
    println!("=== Reproduction: study tables (123 upgrade failures) ===\n");
    println!("{}", dup_study::render_table1(&ds));
    println!("{}", dup_study::render_table2(&ds));
    println!("{}", dup_study::render_table3(&ds));
    println!("{}", dup_study::render_table4(&ds));
    println!("{}", dup_study::render_findings(&ds));

    let named = ds.iter().filter(|r| !r.reconstructed).count();
    println!(
        "dataset: {} records ({} carrying real ticket ids, {} reconstructed from aggregates)",
        ds.len(),
        named,
        ds.len() - named
    );
}
