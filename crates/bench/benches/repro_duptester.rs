//! Regenerates the Table-5 analog: a full DUPTester campaign over the four
//! mini systems, listing every (deduplicated) upgrade failure found, its
//! cause classification, and recall against the seeded-bug catalog
//! (the §6.1.4 false-negative analog).
//!
//! Run with `cargo bench -p dup-bench --bench repro_duptester`.

use dup_core::SystemUnderTest;
use dup_tester::{catalog, run_campaign, CampaignConfig, Scenario};

fn main() {
    let config = CampaignConfig {
        seeds: vec![1, 2, 3, 4],
        include_gap_two: false,
        scenarios: vec![Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin],
        use_unit_tests: true,
    };
    println!("=== Reproduction: Table 5 — DUPTester on 4 mini systems ===");
    println!(
        "(scenarios: full-stop, rolling, new-node-join; workloads: stress + translated \
         unit tests + unit-state handoff; seeds: {:?})\n",
        config.seeds
    );

    let systems: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(dup_kvstore::KvStoreSystem),
        Box::new(dup_dfs::DfsSystem),
        Box::new(dup_mq::MqSystem),
        Box::new(dup_coord::CoordSystem),
    ];

    let mut total_failures = 0;
    let mut total_caught = 0;
    let mut total_seeded = 0;
    for sut in &systems {
        let report = run_campaign(sut.as_ref(), &config);
        println!("{}", report.render_table());
        let (caught, missed) = catalog::recall(&report);
        total_failures += report.failures.len();
        total_caught += caught.len();
        total_seeded += caught.len() + missed.len();
        println!(
            "  seeded-bug recall: {}/{} — caught {:?}",
            caught.len(),
            caught.len() + missed.len(),
            caught
        );
        if !missed.is_empty() {
            println!("  missed: {missed:?}");
        }
        println!();
    }
    println!(
        "TOTAL: {total_failures} distinct upgrade failures across 4 systems \
         (paper found 20 across its 4 systems); seeded-bug recall {total_caught}/{total_seeded}"
    );
}
