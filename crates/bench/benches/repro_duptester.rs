//! Regenerates the Table-5 analog: a full DUPTester campaign over the four
//! mini systems, listing every (deduplicated) upgrade failure found, its
//! cause classification, and recall against the seeded-bug catalog
//! (the §6.1.4 false-negative analog). Each campaign runs twice — on one
//! worker and on one worker per CPU — to show the parallel engine's speedup
//! while asserting the reports stay byte-identical.
//!
//! Run with `cargo bench -p dup-bench --bench repro_duptester`.

use dup_core::SystemUnderTest;
use dup_tester::{catalog, Campaign, CampaignReport, Scenario};
use std::time::Instant;

fn sweep(sut: &dyn SystemUnderTest, threads: usize) -> CampaignReport {
    Campaign::builder(sut)
        .seeds([1, 2, 3, 4])
        .scenarios([Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin])
        .threads(threads)
        .run()
}

fn main() {
    println!("=== Reproduction: Table 5 — DUPTester on 4 mini systems ===");
    println!(
        "(scenarios: full-stop, rolling, new-node-join; workloads: stress + translated \
         unit tests + unit-state handoff; seeds: [1, 2, 3, 4])\n"
    );

    let systems: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(dup_kvstore::KvStoreSystem),
        Box::new(dup_dfs::DfsSystem),
        Box::new(dup_mq::MqSystem),
        Box::new(dup_coord::CoordSystem),
    ];

    let mut total_failures = 0;
    let mut total_caught = 0;
    let mut total_seeded = 0;
    for sut in &systems {
        let seq_started = Instant::now();
        let sequential = sweep(sut.as_ref(), 1);
        let seq_wall = seq_started.elapsed();
        let report = sweep(sut.as_ref(), 0);
        assert_eq!(
            sequential.render_table(),
            report.render_table(),
            "parallel report must be byte-identical to sequential"
        );
        println!("{}", report.render_table());
        print!("{}", report.metrics.render_timings());
        println!(
            "  sequential {seq_wall:?} vs parallel {:?} on {} thread(s) — {:.2}x",
            report.metrics.campaign_wall,
            report.metrics.threads_used,
            seq_wall.as_secs_f64() / report.metrics.campaign_wall.as_secs_f64().max(1e-9)
        );
        let (caught, missed) = catalog::recall(&report);
        total_failures += report.failures.len();
        total_caught += caught.len();
        total_seeded += caught.len() + missed.len();
        println!(
            "  seeded-bug recall: {}/{} — caught {:?}",
            caught.len(),
            caught.len() + missed.len(),
            caught
        );
        if !missed.is_empty() {
            println!("  missed: {missed:?}");
        }
        println!();
    }
    println!(
        "TOTAL: {total_failures} distinct upgrade failures across 4 systems \
         (paper found 20 across its 4 systems); seeded-bug recall {total_caught}/{total_seeded}"
    );
}
