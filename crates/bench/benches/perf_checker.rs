//! Criterion microbenchmarks of the checkers over realistic corpus sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use dup_checker::{check_corpus, check_sources, generate, java_corpus, CorpusSpec};
use dup_idl::SyntaxKind;

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");

    // The largest Table-6 system: Impala, 342 errors + 96 warnings.
    let impala = generate(&CorpusSpec {
        system: "Impala",
        syntax: SyntaxKind::Thrift,
        errors: 342,
        warnings: 96,
        stable_messages: 50,
    });
    group.bench_function("check_corpus_impala_sized", |b| {
        b.iter(|| check_corpus(&impala).expect("checks"))
    });

    let small = generate(&CorpusSpec {
        system: "Mesos",
        syntax: SyntaxKind::Proto2,
        errors: 8,
        warnings: 12,
        stable_messages: 16,
    });
    group.bench_function("check_corpus_mesos_sized", |b| {
        b.iter(|| check_corpus(&small).expect("checks"))
    });

    let corpus = java_corpus();
    group.bench_function("enum_checker_full_corpus", |b| {
        b.iter(|| {
            let mut findings = 0;
            for (_, old, new) in &corpus {
                findings += check_sources(old, new).expect("checks").len();
            }
            findings
        })
    });

    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
