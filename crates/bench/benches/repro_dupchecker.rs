//! Regenerates Table 6: DUPChecker over 7 systems' schema corpora, plus the
//! enum checker's 2-bug / 6-vulnerability yield (paper §6.2).
//!
//! Run with `cargo bench -p dup-bench --bench repro_dupchecker`.

use dup_checker::{check_corpus, check_sources, generate, java_corpus, table6_specs};

fn main() {
    println!("=== Reproduction: Table 6 — DUPChecker on 7 systems ===\n");
    println!("{:<10} {:>10} {:>10}", "System", "# of ERR.", "# of WARN.");
    let mut total_err = 0;
    let mut total_warn = 0;
    for spec in table6_specs() {
        let corpus = generate(&spec);
        let report = check_corpus(&corpus).expect("generated corpora parse");
        println!(
            "{:<10} {:>10} {:>10}",
            report.system,
            report.errors(),
            report.warnings()
        );
        total_err += report.errors();
        total_warn += report.warnings();
    }
    println!("{:<10} {:>10} {:>10}", "Total", total_err, total_warn);
    println!(
        "\npaper reports: 700 errors, 178 warnings — match: {}",
        total_err == 700 && total_warn == 178
    );

    println!("\n=== Enum-ordinal checker (type 2) ===\n");
    let mut bugs = 0;
    let mut vulns = 0;
    for (system, old, new) in &java_corpus() {
        for finding in check_sources(old, new).expect("corpus parses") {
            println!("  [{system}] {finding}");
            if finding.is_bug() {
                bugs += 1;
            } else {
                vulns += 1;
            }
        }
    }
    println!("\n{bugs} bugs + {vulns} vulnerabilities (paper: 2 bugs + 6 vulnerabilities)");
}
