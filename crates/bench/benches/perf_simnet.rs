//! Criterion benchmarks of the simulator and one end-to-end test case —
//! the cost DUPTester pays per campaign entry.

use criterion::{criterion_group, criterion_main, Criterion};
use dup_core::VersionId;
use dup_simnet::{Ctx, Endpoint, Process, Sim, SimDuration, SimSnapshot, StepResult};
use dup_tester::{Campaign, OpenLoopSpec, Scenario, TestCase, WorkloadSpec};

struct Pinger {
    peer: u32,
    remaining: u32,
}

impl Process for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.send(
            Endpoint::Node(self.peer),
            bytes::Bytes::from_static(b"ping"),
        );
        Ok(())
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, _p: &[u8]) -> StepResult {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, bytes::Bytes::from_static(b"ping"));
        }
        Ok(())
    }
    fn on_timer(&mut self, _: &mut Ctx<'_>, _: u64) -> StepResult {
        Ok(())
    }
}

/// Ticks a periodic timer and gossips to its right-hand neighbour on every
/// tick — together with client traffic this approximates the interleaved
/// timer/message load of a real campaign case. Forkable, so the
/// `snapshot_restore` bench can capture a warm storm world.
#[derive(Clone)]
struct StormNode {
    peers: u32,
    me: u32,
    ticks: u32,
}

impl Process for StormNode {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }
    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        ctx.set_timer(SimDuration::from_millis(10), 0);
        Ok(())
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Endpoint, _p: &[u8]) -> StepResult {
        Ok(())
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult {
        if self.ticks > 0 {
            self.ticks -= 1;
            let next = (self.me + 1) % self.peers;
            ctx.send(Endpoint::Node(next), bytes::Bytes::from_static(b"gossip"));
            ctx.set_timer(SimDuration::from_millis(10), token);
        }
        Ok(())
    }
}

fn bench_simnet(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");

    // The tightest loop: one warm node dispatching one message per
    // iteration, with the event queue, effect pool, and storage slot all
    // warm. This is the per-event cost the tentpole optimises.
    group.bench_function("dispatch_single_message", |b| {
        let mut sim = Sim::new(1);
        let n = sim.add_node(
            "a",
            "v",
            Box::new(Pinger {
                peer: 0,
                remaining: 0,
            }),
        );
        sim.start_node(n).expect("starts");
        sim.run_for(SimDuration::from_millis(10));
        let h = sim.client_send(n, bytes::Bytes::from_static(b"warm"));
        sim.run_for(SimDuration::from_millis(10));
        let _ = sim.poll_response(h);
        b.iter(|| {
            // Deliver straight through the hot path; payload is static so
            // the measured work is dispatch itself, not payload cloning.
            let h = sim.client_send(n, bytes::Bytes::from_static(b"ping"));
            sim.run_for(SimDuration::from_millis(10));
            sim.poll_response(h)
        })
    });

    // Many timers and messages interleaved: 8 nodes each ticking a 10 ms
    // timer and gossiping on every tick for 60 simulated seconds.
    group.bench_function("timer_message_storm", |b| {
        b.iter(|| {
            let mut sim = Sim::new(2);
            let n = 8u32;
            for i in 0..n {
                let id = sim.add_node(
                    &format!("storm-{i}"),
                    "v",
                    Box::new(StormNode {
                        peers: n,
                        me: i,
                        ticks: 1000,
                    }),
                );
                sim.start_node(id).expect("starts");
            }
            sim.run_for(SimDuration::from_secs(60));
            sim.events_processed()
        })
    });

    group.bench_function("ping_pong_10k_messages", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let a = sim.add_node(
                "a",
                "v",
                Box::new(Pinger {
                    peer: 1,
                    remaining: 5000,
                }),
            );
            let bn = sim.add_node(
                "b",
                "v",
                Box::new(Pinger {
                    peer: 0,
                    remaining: 5000,
                }),
            );
            sim.start_node(a).expect("starts");
            sim.start_node(bn).expect("starts");
            sim.run_for(SimDuration::from_secs(60));
            sim.messages_delivered()
        })
    });

    // The same workload with the causal trace recorder active: the delta
    // against ping_pong_10k_messages is the per-event recording overhead
    // (ring-slot stores, no allocation). The acceptance bar is <=5% mean.
    group.bench_function("traced_ping_pong", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.enable_trace(dup_simnet::TraceConfig::default());
            let a = sim.add_node(
                "a",
                "v",
                Box::new(Pinger {
                    peer: 1,
                    remaining: 5000,
                }),
            );
            let bn = sim.add_node(
                "b",
                "v",
                Box::new(Pinger {
                    peer: 0,
                    remaining: 5000,
                }),
            );
            sim.start_node(a).expect("starts");
            sim.start_node(bn).expect("starts");
            sim.run_for(SimDuration::from_secs(60));
            sim.messages_delivered()
        })
    });

    // The same storm with a heavy fault plan active: measures the fate-draw
    // overhead on the delivery hot path (a few RNG draws per routed
    // message) plus the duplicate/delay re-scheduling it causes.
    group.bench_function("faulty_ping_pong", |b| {
        b.iter(|| {
            let mut sim = Sim::new(2);
            let n = 8u32;
            for i in 0..n {
                let id = sim.add_node(
                    &format!("faulty-{i}"),
                    "v",
                    Box::new(StormNode {
                        peers: n,
                        me: i,
                        ticks: 1000,
                    }),
                );
                sim.start_node(id).expect("starts");
            }
            sim.install_fault_plan(
                dup_tester::fault_plan_for(
                    dup_tester::FaultIntensity::Heavy,
                    dup_tester::Durability::Strict,
                    2,
                    n,
                    dup_simnet::SimTime::ZERO,
                )
                .expect("heavy plan exists"),
            );
            sim.run_for(SimDuration::from_secs(60));
            (sim.events_processed(), sim.faults_injected())
        })
    });

    // One full snapshot + restore cycle of a warm 8-node storm world with
    // live timers and in-flight messages: the fixed cost snapshot-and-fork
    // execution pays per seed instead of re-running the shared prefix. Both
    // directions write into pooled buffers, so this is ~a memcpy of the
    // logical state.
    group.bench_function("snapshot_restore", |b| {
        let mut sim = Sim::new(3);
        let n = 8u32;
        for i in 0..n {
            let id = sim.add_node(
                &format!("snap-{i}"),
                "v",
                Box::new(StormNode {
                    peers: n,
                    me: i,
                    ticks: u32::MAX,
                }),
            );
            sim.start_node(id).expect("starts");
        }
        sim.run_for(SimDuration::from_secs(2));
        let mut snap = SimSnapshot::new();
        assert!(sim.snapshot_into(&mut snap), "storm world must be forkable");
        b.iter(|| {
            sim.snapshot_into(&mut snap);
            sim.restore(&snap);
            snap.taken_at()
        })
    });

    group.sample_size(10);
    group.bench_function("duptester_case_kvstore_fullstop", |b| {
        let case = TestCase {
            from: "2.1.0".parse::<VersionId>().expect("parses"),
            to: "3.0.0".parse().expect("parses"),
            scenario: Scenario::FullStop,
            workload: WorkloadSpec::Stress,
            seed: 1,
            faults: Default::default(),
            durability: Default::default(),
        };
        b.iter(|| case.run(&dup_kvstore::KvStoreSystem))
    });
    group.bench_function("duptester_case_dfs_rolling", |b| {
        let case = TestCase {
            from: "2.0.0".parse::<VersionId>().expect("parses"),
            to: "2.6.0".parse().expect("parses"),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed: 1,
            faults: Default::default(),
            durability: Default::default(),
        };
        b.iter(|| case.run(&dup_dfs::DfsSystem))
    });

    // The worst-case campaign entry: a rolling upgrade under a heavy fault
    // plan with torn durability — crash points, restarts, and per-crash
    // storage materialization all active. This is what the crash-durability
    // axis adds to a case's price tag relative to the plain fullstop bench.
    group.bench_function("crashy_upgrade", |b| {
        let case = TestCase {
            from: "2.1.0".parse::<VersionId>().expect("parses"),
            to: "3.0.0".parse().expect("parses"),
            scenario: Scenario::Rolling,
            workload: WorkloadSpec::Stress,
            seed: 1,
            faults: dup_tester::FaultIntensity::Heavy,
            durability: dup_tester::Durability::Torn,
        };
        b.iter(|| case.run(&dup_kvstore::KvStoreSystem))
    });

    group.finish();

    // Open-loop traffic at two client scales: the same seeded arrival
    // schedule (500 req/s over the case's traffic window, bursts included)
    // driving 10^3 vs 10^6 logical clients. Logical clients are arithmetic
    // — `client = mix(index ^ churn_salt) % clients` — so the two benches
    // must price identically; CI warns when `1m_clients` drifts past
    // ~1.25x `1k_clients`, which would mean client count leaked into
    // per-arrival work. (Memory independence is asserted separately by the
    // counting-allocator test in `crates/simnet/tests/alloc_free_dispatch.rs`.)
    let mut group = c.benchmark_group("open_loop_traffic");
    group.sample_size(10);
    for (label, clients) in [("1k_clients", 1_000u64), ("1m_clients", 1_000_000)] {
        group.bench_function(label, |b| {
            let case = TestCase {
                from: "2.1.0".parse::<VersionId>().expect("parses"),
                to: "3.0.0".parse().expect("parses"),
                scenario: Scenario::Rolling,
                workload: WorkloadSpec::OpenLoop(OpenLoopSpec {
                    clients,
                    rate_per_sec: 500,
                    ..OpenLoopSpec::small()
                }),
                seed: 1,
                faults: Default::default(),
                durability: Default::default(),
            };
            b.iter(|| case.run(&dup_kvstore::KvStoreSystem))
        });
    }
    group.finish();
}

/// Campaign scaling across worker counts: the same sweep on 1, 2, 4, and 8
/// warm per-worker runners. Two families:
///
/// - `campaign_kvstore/threads_N` — the historical heavyweight sweep
///   (expensive rolling-upgrade cases; dominated by per-case simulation);
/// - `campaign_scaling/threads_N` — a 10 020-case mq matrix whose cases are
///   cheap (~80µs), so executor dispatch, batching, and per-case setup
///   dominate. This is the matrix the warm-runner redesign targets: before
///   it, every case paid a fresh `Sim` allocation and `threads_4` lost to
///   `threads_1`; now each worker resets one warm simulator per case.
///
/// Reports stay byte-identical whatever the thread count; only wall-clock
/// may differ. On multi-core hosts `threads_4` must beat `threads_1`; on a
/// single CPU the parallel run may only pay a small coordination tax (CI
/// gates both, see `.github/workflows/ci.yml`).
fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_kvstore");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                Campaign::builder(&dup_kvstore::KvStoreSystem)
                    .seeds([1, 2])
                    .scenarios([Scenario::FullStop, Scenario::Rolling])
                    .threads(threads)
                    .run()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                // 167 seeds x 60 cases/seed = 10 020 cases.
                let report = Campaign::builder(&dup_mq::MqSystem)
                    .seeds(1..=167)
                    .scenarios(Scenario::paper())
                    .threads(threads)
                    .run();
                assert!(report.cases_run >= 10_000, "matrix shrank below 10k");
                report
            })
        });
    }
    group.finish();

    // Snapshot-and-fork on vs off: the same seed-heavy mq sweep run once
    // per case from scratch and once with each group's seed-independent
    // prefix executed once, snapshotted, and forked per seed. mq cases are
    // cheap, so the shared prefix (boot + settle + warm-up traffic) is a
    // large fraction of every case — exactly the regime the snapshot path
    // targets; it wins ~35-45% here. Reports are byte-identical either way
    // (campaign tests assert it); only wall-clock may differ. CI gates `on`
    // against `off` the same way it gates parallel scaling — losing means
    // the snapshot machinery costs more than the prefix it amortizes.
    let mut group = c.benchmark_group("campaign_snapshot");
    group.sample_size(10);
    for (label, snapshot) in [("off", false), ("on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                Campaign::builder(&dup_mq::MqSystem)
                    .seeds(1..=32)
                    .scenarios(Scenario::paper())
                    .snapshot(snapshot)
                    .run()
            })
        });
    }
    group.finish();

    // Rollout-plan scenarios vs the paper's three on the same mq matrix:
    // every case now compiles its scenario into an explicit `RolloutPlan`
    // (pooled, validated, allocation-free when warm), so `paper` prices the
    // plan interpreter against the historical hard-coded drivers, and
    // `extended` prices the four new schedules (rollback, multi-hop,
    // canary-then-fleet, rolling-with-churn) that only exist as plans.
    let mut group = c.benchmark_group("rollout_plans");
    group.sample_size(10);
    let paper = Scenario::paper().to_vec();
    let extended = Scenario::extended()[3..].to_vec();
    for (label, scenarios) in [("paper", paper), ("extended", extended)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                Campaign::builder(&dup_mq::MqSystem)
                    .seeds(1..=8)
                    .scenarios(scenarios.iter().copied())
                    .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simnet, bench_campaign);
criterion_main!(benches);
