//! Criterion microbenchmarks of the IDL parsers and the Java-subset parser.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dup_idl::{parse_proto, parse_thrift};
use dup_srcmodel::parse_java;

fn proto_source(messages: usize) -> String {
    let mut s = String::from("syntax = \"proto2\";\npackage bench.pb;\n");
    for i in 0..messages {
        s.push_str(&format!(
            "message Msg{i} {{\n  required uint64 id = 1;\n  optional string name = 2;\n  \
             repeated uint64 children = 3;\n  optional Kind{i} kind = 4;\n}}\n\
             enum Kind{i} {{ A = 0; B = 1; C = 2; }}\n"
        ));
    }
    s
}

fn thrift_source(structs: usize) -> String {
    let mut s = String::from("namespace java bench\n");
    for i in 0..structs {
        s.push_str(&format!(
            "struct S{i} {{\n  1: required i64 id,\n  2: optional string name,\n  \
             3: list<i64> children\n}}\nenum E{i} {{ A = 0, B, C }}\n"
        ));
    }
    s
}

fn java_source(classes: usize) -> String {
    let mut s = String::from("package bench;\n");
    for i in 0..classes {
        s.push_str(&format!(
            "public class C{i} {{\n  public enum K{i} {{ X, Y, Z }}\n  \
             public void write(DataOutput out, K{i} k) {{\n    int v = k.ordinal();\n    \
             out.writeInt(v);\n  }}\n}}\n"
        ));
    }
    s
}

fn bench_parsers(c: &mut Criterion) {
    let proto = proto_source(50);
    let thrift = thrift_source(50);
    let java = java_source(50);

    let mut group = c.benchmark_group("idl");
    group.throughput(Throughput::Bytes(proto.len() as u64));
    group.bench_function("parse_proto_50msgs", |b| {
        b.iter(|| parse_proto(&proto).expect("parses"))
    });
    group.throughput(Throughput::Bytes(thrift.len() as u64));
    group.bench_function("parse_thrift_50structs", |b| {
        b.iter(|| parse_thrift(&thrift).expect("parses"))
    });
    group.throughput(Throughput::Bytes(java.len() as u64));
    group.bench_function("parse_java_50classes", |b| {
        b.iter(|| parse_java(&java).expect("parses"))
    });
    group.bench_function("lower_50msgs", |b| {
        let file = parse_proto(&proto).expect("parses");
        b.iter(|| dup_idl::lower(&file).expect("lowers"))
    });
    group.finish();
}

criterion_group!(benches, bench_parsers);
criterion_main!(benches);
