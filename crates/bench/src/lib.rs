//! # dup-bench — benchmark and reproduction harnesses
//!
//! - `repro_tables` — regenerates Tables 1–4 and Findings 1–13 (study).
//! - `repro_duptester` — runs the full DUPTester campaign over the four
//!   mini systems and prints the Table-5 analog plus seeded-bug recall.
//! - `repro_dupchecker` — regenerates Table 6 (700 errors + 178 warnings
//!   over 7 systems) and the enum-checker yield (2 bugs + 6 vulns).
//! - `repro_figures` — replays Figure 1 (HDFS-11856 timeline) and Figure 2
//!   (the ReplicationLoadSink diff).
//! - `perf_*` — criterion microbenchmarks of the substrates.
//!
//! Run everything with `cargo bench`.

#![forbid(unsafe_code)]
