//! The versioned key-value store node.
//!
//! One `KvNode` type implements every release; behaviour differences between
//! releases — including the seeded upgrade bugs — branch on the version,
//! mirroring how the real bugs live in version-to-version diffs. See the
//! crate docs for the bug catalog.

use crate::codec::{self, commitlog_format, proto_version, release_id, KeyspaceDef, SchemaState};
use dup_core::{NodeSetup, VersionId};
use dup_simnet::{Ctx, Endpoint, Fatal, LogLevel, Process, SimDuration, StepResult};
use dup_wire::{proto, Frame, MessageValue, Value};
use std::collections::BTreeMap;

const TOKEN_GOSSIP: u64 = 1;
const TOKEN_STUCK_RETRY: u64 = 2;
const GOSSIP_INTERVAL: SimDuration = SimDuration::from_millis(500);
const STUCK_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(300);

/// Replication strategies each release understands (4.0 dropped
/// `OldNetworkTopologyStrategy` — the CASSANDRA-16301 mechanism).
fn known_strategies(v: VersionId) -> &'static [&'static str] {
    if v.major >= 4 {
        &["SimpleStrategy", "NetworkTopologyStrategy"]
    } else {
        &[
            "SimpleStrategy",
            "NetworkTopologyStrategy",
            "OldNetworkTopologyStrategy",
        ]
    }
}

/// A node of the mini Cassandra-like store.
#[derive(Clone)]
pub struct KvNode {
    version: VersionId,
    proto: u32,
    setup: NodeSetup,
    state: SchemaState,
    peer_versions: BTreeMap<u32, u32>,
    stuck: Option<String>,
    /// 3.11 only: system tables were regenerated at upgrade; serving a
    /// schema pull re-regenerates them with a fresh timestamp — the
    /// CASSANDRA-13441 migration-storm bug.
    system_tables_dirty: bool,
    /// Set while a schema pull is outstanding; migrations are debounced so a
    /// node has at most one pull in flight (as real Cassandra does — the
    /// 13441 storm is a *sustained* flood, not an exponential one).
    pull_inflight_since: Option<dup_simnet::SimTime>,
    boot_counter: u64,
}

impl KvNode {
    /// Creates a node of `version`.
    pub fn new(version: VersionId, setup: NodeSetup) -> Self {
        KvNode {
            version,
            proto: proto_version(version),
            setup,
            state: SchemaState::default(),
            peer_versions: BTreeMap::new(),
            stuck: None,
            system_tables_dirty: false,
            pull_inflight_since: None,
            boot_counter: 0,
        }
    }

    fn is_storm_buggy(&self) -> bool {
        self.version.major == 3 && self.version.minor == 11
    }

    fn checks_version_before_pull(&self) -> bool {
        self.proto >= 8 // Fixed in 2.1 by putting the version in the gossip.
    }

    fn schema_uuid(&self) -> String {
        format!(
            "{:08x}-{:04x}",
            self.state.timestamp.wrapping_mul(0x9e37),
            self.proto
        )
    }

    fn gossip_body(&self) -> Vec<u8> {
        let schema = codec::gossip_schema(self.version);
        let mut digest = MessageValue::new("GossipDigest")
            .set("generation", Value::U64(self.boot_counter))
            .set("schema_ts", Value::U64(self.state.timestamp));
        if self.version.major == 1 && self.version.minor == 1 {
            digest.put("schema_id", Value::U64(self.state.timestamp));
        } else {
            digest.put("schema_uuid", Value::Str(self.schema_uuid()));
        }
        if self.proto >= 8 {
            digest.put("proto_version", Value::U32(self.proto));
        }
        proto::encode(&schema, &digest).expect("own gossip digest always encodes")
    }

    fn broadcast_gossip(&self, ctx: &mut Ctx<'_>) {
        let body = self.gossip_body();
        for peer in self.setup.peers() {
            ctx.send(
                Endpoint::Node(peer),
                Frame::new(self.proto, "gossip", body.clone()).encode(),
            );
        }
    }

    fn persist_schema(&self, ctx: &mut Ctx<'_>) {
        let bytes = codec::encode_schema_state(self.version, &self.state)
            .expect("own schema state always encodes");
        ctx.storage().write("schema", bytes);
        // Schema commits are fsynced: losing one to a crash would fake a
        // data-loss bug no real release has.
        ctx.flush("schema");
    }

    fn wedge(&mut self, ctx: &mut Ctx<'_>, reason: String) {
        ctx.error(format!("schema migration wedged: {reason}"));
        if self.stuck.is_none() {
            ctx.set_timer(STUCK_RETRY_INTERVAL, TOKEN_STUCK_RETRY);
        }
        self.stuck = Some(reason);
    }

    fn validate_loaded_schema(&self) -> Result<(), Fatal> {
        // CASSANDRA-16292 shape: 3.11+ cannot load keyspace tombstones
        // written by 3.0's DROP KEYSPACE.
        if release_id(self.version) >= 31_100 {
            if let Some(ks) = self.state.keyspaces.iter().find(|k| k.dropped) {
                return Err(Fatal::new(format!(
                    "unexpected tombstone for dropped keyspace '{}' in schema; \
                     prepared-statement cache is missing",
                    ks.name
                )));
            }
        }
        // CASSANDRA-16301: 4.0 removed OldNetworkTopologyStrategy.
        if let Some(ks) = self
            .state
            .keyspaces
            .iter()
            .find(|k| !known_strategies(self.version).contains(&k.strategy.as_str()))
        {
            return Err(Fatal::new(format!(
                "unable to find replication strategy class '{}' for keyspace '{}'",
                ks.strategy, ks.name
            )));
        }
        Ok(())
    }

    fn handle_gossip(&mut self, ctx: &mut Ctx<'_>, from: u32, frame: &Frame) -> StepResult {
        let own = codec::gossip_schema(self.version);
        let decoded = proto::decode(&own, "GossipDigest", &frame.body).or_else(|e| {
            if frame.version < self.proto {
                // Newer releases ship a legacy deserializer for older gossip.
                let legacy = codec::gossip_schema(VersionId::new(1, 1, 0));
                proto::decode(&legacy, "GossipDigest", &frame.body)
            } else {
                Err(e)
            }
        });
        let digest = match decoded {
            Ok(d) => d,
            Err(e) => {
                // CASSANDRA-4195: the old node cannot parse the new node's
                // ApplicationState and wedges in schema migration.
                self.wedge(
                    ctx,
                    format!("cannot deserialize gossip ApplicationState from node-{from}: {e}"),
                );
                return Ok(());
            }
        };
        if let Ok(pv) = digest.get_u64("proto_version") {
            self.peer_versions.insert(from, pv as u32);
        }
        let peer_ts = digest.get_u64("schema_ts").unwrap_or(0);
        if peer_ts > self.state.timestamp && self.stuck.is_none() {
            let peer_proto = self.peer_versions.get(&from).copied();
            let should_pull = if self.checks_version_before_pull() {
                // Fixed behaviour: only pull from same-version peers, and the
                // version is always known because gossip carries it.
                peer_proto == Some(self.proto)
            } else {
                // Buggy behaviour (≤2.0): check the MessagingService-learned
                // version, but *assume same version when unknown* — the
                // CASSANDRA-6678 race.
                match peer_proto {
                    Some(pv) => pv == self.proto,
                    None => true,
                }
            };
            let debounced = self
                .pull_inflight_since
                .is_some_and(|since| ctx.now().since(since) < SimDuration::from_millis(500));
            if should_pull && !debounced {
                self.pull_inflight_since = Some(ctx.now());
                ctx.send(
                    Endpoint::Node(from),
                    Frame::new(self.proto, "schema_pull", Vec::new()).encode(),
                );
            } else if !should_pull {
                ctx.log(
                    LogLevel::Debug,
                    format!("skipping schema pull from node-{from} (different version)"),
                );
            }
        }
        Ok(())
    }

    fn handle_schema_push(&mut self, ctx: &mut Ctx<'_>, from: u32, frame: &Frame) -> StepResult {
        self.pull_inflight_since = None;
        let decoded = codec::decode_schema_state(self.version, &frame.body);
        let decoded = match decoded {
            Ok(d) => d,
            Err(e) => {
                // The 1.2-pulled-2.0-schema aftermath of CASSANDRA-6678.
                self.wedge(
                    ctx,
                    format!("cannot apply schema migrated from node-{from}: {e}"),
                );
                return Ok(());
            }
        };
        if decoded.writer_proto() > self.proto && self.checks_version_before_pull() {
            ctx.warn(format!(
                "ignoring schema push from newer-version node-{from}"
            ));
            return Ok(());
        }
        self.state = decoded.state;
        // 3.11+ tombstone intolerance also fires on migration apply.
        self.validate_loaded_schema()?;
        self.persist_schema(ctx);
        ctx.info(format!(
            "applied schema migration from node-{from} (ts {})",
            self.state.timestamp
        ));
        self.broadcast_gossip(ctx);
        Ok(())
    }

    fn handle_client(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, text: &str) -> StepResult {
        let reply = self.execute_command(ctx, text);
        ctx.send(from, reply.into_bytes().into());
        Ok(())
    }

    fn execute_command(&mut self, ctx: &mut Ctx<'_>, text: &str) -> String {
        if let Some(reason) = &self.stuck {
            return format!("ERR node wedged: {reason}");
        }
        let parts: Vec<&str> = text.split_whitespace().collect();
        match parts.as_slice() {
            ["HEALTH"] => "OK healthy".to_string(),
            ["PUT", table, key, value] => self.cmd_put(ctx, table, key, value),
            ["GET", table, key] => self.cmd_get(ctx, table, key),
            ["CREATE_KS", name] => self.cmd_create_ks(ctx, name, "SimpleStrategy"),
            ["CREATE_KS", name, strategy] => self.cmd_create_ks(ctx, name, strategy),
            ["CREATE_TABLE", table] => self.cmd_create_table(ctx, table, false),
            ["CREATE_TABLE", table, "COMPACT"] => self.cmd_create_table(ctx, table, true),
            ["DROP_KS", name] => self.cmd_drop_ks(ctx, name),
            ["TRACE", "ON"] => {
                let r = self.cmd_create_ks(ctx, "system_traces", "SimpleStrategy");
                if r.starts_with("ERR") {
                    return r;
                }
                self.cmd_create_table(ctx, "system_traces.events", false)
            }
            _ => format!("ERR unknown command '{text}'"),
        }
    }

    fn split_table(name: &str) -> Option<(&str, &str)> {
        name.split_once('.')
    }

    fn cmd_put(&mut self, ctx: &mut Ctx<'_>, table: &str, key: &str, value: &str) -> String {
        let Some((ks, t)) = Self::split_table(table) else {
            return format!("ERR bad table name '{table}'");
        };
        if !self.state.has_table(ks, t) {
            return format!("ERR unknown table {table}");
        }
        let row = codec::encode_row(self.version, value);
        ctx.storage().write(&format!("data/{table}/{key}"), row);
        let seg = format!("commitlog/seg-b{}", self.boot_counter);
        ctx.storage().append(&seg, value.as_bytes());
        "OK".to_string()
    }

    fn cmd_get(&mut self, ctx: &mut Ctx<'_>, table: &str, key: &str) -> String {
        let Some((ks, t)) = Self::split_table(table) else {
            return format!("ERR bad table name '{table}'");
        };
        if !self.state.has_table(ks, t) {
            return format!("ERR unknown table {table}");
        }
        let Some(bytes) = ctx.storage_ref().read(&format!("data/{table}/{key}")) else {
            return "ERR not found".to_string();
        };
        let bytes = bytes.to_vec();
        match codec::decode_row(self.version, &bytes) {
            Ok(v) => format!("OK {v}"),
            Err(e) => {
                // CASSANDRA-16257 shape: 2.1+ cannot read pre-2.1 rows.
                ctx.error(format!("corrupt sstable row for {table}/{key}: {e}"));
                format!("ERR corrupt sstable row: {e}")
            }
        }
    }

    fn cmd_create_ks(&mut self, ctx: &mut Ctx<'_>, name: &str, strategy: &str) -> String {
        if !known_strategies(self.version).contains(&strategy) {
            return format!("ERR unknown replication strategy '{strategy}'");
        }
        if let Some(ks) = self.state.keyspace_mut(name) {
            if ks.dropped {
                ks.dropped = false;
                ks.tables.clear();
            }
            return "OK".to_string();
        }
        self.state.keyspaces.push(KeyspaceDef {
            name: name.to_string(),
            strategy: strategy.to_string(),
            dropped: false,
            tables: Vec::new(),
        });
        self.schema_changed(ctx);
        "OK".to_string()
    }

    fn cmd_create_table(&mut self, ctx: &mut Ctx<'_>, table: &str, compact: bool) -> String {
        let Some((ks, t)) = Self::split_table(table) else {
            return format!("ERR bad table name '{table}'");
        };
        let (ks, t) = (ks.to_string(), t.to_string());
        let Some(def) = self.state.keyspace_mut(&ks) else {
            return format!("ERR unknown keyspace {ks}");
        };
        if def.dropped {
            return format!("ERR keyspace {ks} was dropped");
        }
        if !def.tables.iter().any(|(name, _)| *name == t) {
            def.tables.push((t, compact));
            self.schema_changed(ctx);
        }
        "OK".to_string()
    }

    fn cmd_drop_ks(&mut self, ctx: &mut Ctx<'_>, name: &str) -> String {
        let tombstones = self.proto >= 10; // 3.0 introduced schema tombstones.
        match self.state.keyspace_mut(name) {
            Some(ks) if tombstones => {
                ks.dropped = true;
                ks.tables.clear();
            }
            Some(_) => {
                self.state.keyspaces.retain(|k| k.name != name);
            }
            None => return format!("ERR unknown keyspace {name}"),
        }
        self.schema_changed(ctx);
        "OK".to_string()
    }

    fn schema_changed(&mut self, ctx: &mut Ctx<'_>) {
        self.state.timestamp += 1;
        self.persist_schema(ctx);
        self.broadcast_gossip(ctx);
    }
}

impl Process for KvNode {
    fn fork(&self) -> Option<Box<dyn Process>> {
        Some(Box::new(self.clone()))
    }

    fn restore_from(&mut self, src: &dyn Process) -> bool {
        let any: &dyn std::any::Any = src;
        match any.downcast_ref::<Self>() {
            Some(other) => {
                self.clone_from(other);
                true
            }
            None => false,
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        // 1. Replay the commit log; segments from a *newer* format are fatal
        //    (this is what stops the CASSANDRA-15794 downgrade).
        let own_cl = commitlog_format(self.version);
        for seg in ctx.storage_ref().list("commitlog/") {
            let bytes = ctx
                .storage_ref()
                .read(&seg)
                .expect("listed file exists")
                .to_vec();
            let header = match Frame::decode(&bytes) {
                Ok(h) => h,
                Err(e) => {
                    // A torn tail from a mid-write crash is expected under
                    // buffered durability; real commit log replay skips the
                    // truncated remainder rather than refusing to boot.
                    ctx.warn(format!("skipping torn commit log segment {seg}: {e}"));
                    continue;
                }
            };
            let seg_fmt: u32 = header.kind.parse().unwrap_or(0);
            if seg_fmt > own_cl {
                return Err(Fatal::new(format!(
                    "cannot replay commit log segment {seg}: unknown format {seg_fmt} \
                     (this node supports up to {own_cl})"
                )));
            }
        }
        self.boot_counter = ctx.storage_ref().list("commitlog/").len() as u64 + 1;

        // 2. CASSANDRA-15794's trap: 4.0 writes its new-format commit log
        //    header *before* validating the schema, poisoning downgrades.
        if self.version.major >= 4 {
            let seg = format!("commitlog/seg-b{}", self.boot_counter);
            ctx.storage().write(
                &seg,
                Frame::new(self.proto, &own_cl.to_string(), Vec::new())
                    .encode()
                    .to_vec(),
            );
            // The header hits disk immediately — that is what poisons the
            // downgrade even when the boot aborts a moment later.
            ctx.flush(&seg);
        }

        // 3. Load the schema file left by the previous generation.
        match ctx.storage_ref().read("schema").map(<[u8]>::to_vec) {
            Some(bytes) => {
                let own_release = release_id(self.version);
                let decoded = codec::decode_schema_state(self.version, &bytes)
                    .map_err(|e| Fatal::new(format!("cannot load schema file: {e}")))?;
                let writer_release = decoded.writer_release;
                self.state = decoded.state;
                if writer_release < own_release {
                    ctx.info(format!(
                        "upgrading schema written by release {writer_release} to {own_release}"
                    ));
                    if self.proto >= 7 {
                        // 2.0+ regenerate system tables on upgrade, bumping
                        // the schema timestamp (feeds 6678 and 13441).
                        self.state.timestamp += 1;
                    }
                    if self.is_storm_buggy() {
                        self.system_tables_dirty = true;
                    }
                }
            }
            None => {
                self.state = SchemaState {
                    timestamp: 1,
                    keyspaces: Vec::new(),
                };
            }
        }
        self.validate_loaded_schema()?;

        // CASSANDRA-15794 proper: 4.0 refuses COMPACT STORAGE tables — after
        // having already written its commit log header above.
        if self.version.major >= 4 {
            if let Some((ks, t)) = self.state.keyspaces.iter().find_map(|k| {
                k.tables
                    .iter()
                    .find(|(_, c)| *c)
                    .map(|(t, _)| (k.name.clone(), t.clone()))
            }) {
                return Err(Fatal::new(format!(
                    "Compact Tables are not allowed in Cassandra starting with 4.0: {ks}.{t}"
                )));
            }
        }

        // 4. Pre-4.0 releases write their commit log marker after validation.
        if self.version.major < 4 {
            let seg = format!("commitlog/seg-b{}", self.boot_counter);
            ctx.storage().write(
                &seg,
                Frame::new(self.proto, &own_cl.to_string(), Vec::new())
                    .encode()
                    .to_vec(),
            );
            ctx.flush(&seg);
        }

        self.persist_schema(ctx);
        ctx.info(format!(
            "kvstore {} started (proto {})",
            self.version, self.proto
        ));

        // 5. Handshake + immediate gossip. Both go out in the same tick, so
        //    their arrival order at each peer depends on network jitter —
        //    the CASSANDRA-6678 race window.
        let hs = proto::encode(
            &codec::handshake_schema(),
            &MessageValue::new("Handshake").set("proto_version", Value::U32(self.proto)),
        )
        .expect("handshake always encodes");
        for peer in self.setup.peers() {
            ctx.send(
                Endpoint::Node(peer),
                Frame::new(self.proto, "handshake", hs.clone()).encode(),
            );
        }
        self.broadcast_gossip(ctx);
        ctx.set_timer(GOSSIP_INTERVAL, TOKEN_GOSSIP);
        Ok(())
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Endpoint, payload: &[u8]) -> StepResult {
        match from {
            Endpoint::Client(_) => {
                let text = String::from_utf8_lossy(payload).into_owned();
                self.handle_client(ctx, from, &text)
            }
            Endpoint::Node(n) => {
                let frame = match Frame::decode(payload) {
                    Ok(f) => f,
                    Err(e) => {
                        ctx.warn(format!("dropping unparseable frame from node-{n}: {e}"));
                        return Ok(());
                    }
                };
                match frame.kind.as_str() {
                    "handshake" => {
                        if let Ok(hs) =
                            proto::decode(&codec::handshake_schema(), "Handshake", &frame.body)
                        {
                            if let Ok(pv) = hs.get_u64("proto_version") {
                                self.peer_versions.insert(n, pv as u32);
                            }
                        }
                        Ok(())
                    }
                    "gossip" => self.handle_gossip(ctx, n, &frame),
                    "schema_pull" => {
                        let body = codec::encode_schema_state(self.version, &self.state)
                            .expect("own schema always encodes");
                        ctx.send(
                            Endpoint::Node(n),
                            Frame::new(self.proto, "schema_push", body).encode(),
                        );
                        if self.system_tables_dirty {
                            // CASSANDRA-13441: serving a pull re-regenerates
                            // the upgraded system tables with a *fresh*
                            // timestamp — newer than what was just pushed —
                            // so the migration never converges.
                            self.state.timestamp += 1;
                            self.persist_schema(ctx);
                            self.broadcast_gossip(ctx);
                        }
                        Ok(())
                    }
                    "schema_push" => self.handle_schema_push(ctx, n, &frame),
                    other => {
                        ctx.warn(format!("unknown message kind '{other}' from node-{n}"));
                        Ok(())
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> StepResult {
        match token {
            TOKEN_GOSSIP => {
                if self.stuck.is_none() {
                    self.broadcast_gossip(ctx);
                }
                // Periodic-sync commit log: everything buffered since the
                // last tick becomes durable here, so only the most recent
                // appends are exposed to torn-tail crashes.
                ctx.flush_all();
                ctx.set_timer(GOSSIP_INTERVAL, TOKEN_GOSSIP);
            }
            TOKEN_STUCK_RETRY => {
                if let Some(reason) = self.stuck.clone() {
                    ctx.error(format!("schema migration still pending: {reason}"));
                    ctx.set_timer(STUCK_RETRY_INTERVAL, TOKEN_STUCK_RETRY);
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
        self.persist_schema(ctx);
        ctx.info("kvstore shutting down cleanly");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dup_simnet::{Sim, SimDuration};

    fn v(s: &str) -> VersionId {
        s.parse().unwrap()
    }

    fn boot_cluster(sim: &mut Sim, version: VersionId, n: u32) -> Vec<u32> {
        let mut ids = Vec::new();
        for i in 0..n {
            let node = KvNode::new(version, NodeSetup::new(i, n));
            let id = sim.add_node(
                &format!("kv-host-{i}"),
                &version.to_string(),
                Box::new(node),
            );
            sim.start_node(id).unwrap();
            ids.push(id);
        }
        sim.run_for(SimDuration::from_millis(100));
        ids
    }

    fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
        let resp = sim
            .rpc(
                node,
                text.as_bytes().to_vec().into(),
                SimDuration::from_secs(2),
            )
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .unwrap_or_else(|| "TIMEOUT".to_string());
        resp
    }

    #[test]
    fn single_version_cluster_serves_reads_and_writes() {
        let mut sim = Sim::new(1);
        let ids = boot_cluster(&mut sim, v("3.0.0"), 3);
        assert_eq!(cmd(&mut sim, ids[0], "CREATE_KS stress"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "CREATE_TABLE stress.standard1"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "PUT stress.standard1 k1 v1"), "OK");
        assert_eq!(cmd(&mut sim, ids[0], "GET stress.standard1 k1"), "OK v1");
        assert_eq!(
            cmd(&mut sim, ids[0], "GET stress.standard1 nope"),
            "ERR not found"
        );
        assert_eq!(cmd(&mut sim, ids[1], "HEALTH"), "OK healthy");
    }

    #[test]
    fn schema_changes_propagate_via_gossip() {
        let mut sim = Sim::new(2);
        let ids = boot_cluster(&mut sim, v("3.0.0"), 3);
        cmd(&mut sim, ids[0], "CREATE_KS stress");
        cmd(&mut sim, ids[0], "CREATE_TABLE stress.standard1");
        sim.run_for(SimDuration::from_secs(3));
        // The other nodes learn the table through schema migration. (Data
        // itself is not replicated — each node is its own partition — so the
        // read goes to the node that took the write.)
        assert_eq!(cmd(&mut sim, ids[2], "PUT stress.standard1 k v"), "OK");
        assert_eq!(cmd(&mut sim, ids[2], "GET stress.standard1 k"), "OK v");
        assert_eq!(cmd(&mut sim, ids[1], "PUT stress.standard1 k2 v2"), "OK");
    }

    #[test]
    fn cassandra_4195_old_node_wedges_on_new_gossip() {
        // Rolling upgrade 1.1 → 1.2: the upgraded node's gossip carries a
        // string UUID the 1.1 nodes cannot parse; they wedge in migration.
        let mut sim = Sim::new(3);
        let ids = boot_cluster(&mut sim, v("1.1.0"), 2);
        sim.stop_node(ids[1]).unwrap();
        sim.install(
            ids[1],
            "1.2.0",
            Box::new(KvNode::new(v("1.2.0"), NodeSetup::new(1, 2))),
        )
        .unwrap();
        sim.start_node(ids[1]).unwrap();
        sim.run_for(SimDuration::from_secs(3));
        assert_eq!(
            cmd(&mut sim, ids[0], "HEALTH").split(':').next().unwrap(),
            "ERR node wedged"
        );
        assert!(
            sim.logs()
                .matching("cannot deserialize gossip ApplicationState")
                .count()
                >= 1
        );
        // The upgraded node itself is healthy — its legacy reader handles old gossip.
        assert_eq!(cmd(&mut sim, ids[1], "HEALTH"), "OK healthy");
    }

    #[test]
    fn cassandra_15794_compact_table_blocks_upgrade_and_downgrade() {
        let mut sim = Sim::new(4);
        let ids = boot_cluster(&mut sim, v("3.11.0"), 1);
        cmd(&mut sim, ids[0], "CREATE_KS legacy");
        assert_eq!(
            cmd(&mut sim, ids[0], "CREATE_TABLE legacy.cf COMPACT"),
            "OK"
        );
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "4.0.0",
            Box::new(KvNode::new(v("4.0.0"), NodeSetup::new(0, 1))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("Compact Tables are not allowed"));
        // Downgrade attempt: 3.11 cannot replay the format-40 commit log 4.0
        // wrote before it died.
        sim.install(
            ids[0],
            "3.11.0",
            Box::new(KvNode::new(v("3.11.0"), NodeSetup::new(0, 1))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("unknown format 40"));
    }

    #[test]
    fn cassandra_16301_removed_strategy_crashes_4_0() {
        let mut sim = Sim::new(5);
        let ids = boot_cluster(&mut sim, v("3.11.0"), 1);
        assert_eq!(
            cmd(
                &mut sim,
                ids[0],
                "CREATE_KS old_ks OldNetworkTopologyStrategy"
            ),
            "OK"
        );
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "4.0.0",
            Box::new(KvNode::new(v("4.0.0"), NodeSetup::new(0, 1))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("unable to find replication strategy class 'OldNetworkTopologyStrategy'"));
    }

    #[test]
    fn cassandra_16292_tombstone_crashes_3_11() {
        let mut sim = Sim::new(6);
        let ids = boot_cluster(&mut sim, v("3.0.0"), 1);
        cmd(&mut sim, ids[0], "CREATE_KS ks2");
        assert_eq!(cmd(&mut sim, ids[0], "DROP_KS ks2"), "OK");
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "3.11.0",
            Box::new(KvNode::new(v("3.11.0"), NodeSetup::new(0, 1))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim
            .crash_reason(ids[0])
            .unwrap()
            .contains("tombstone for dropped keyspace 'ks2'"));
    }

    #[test]
    fn row_format_bug_corrupts_reads_after_2_1_upgrade() {
        let mut sim = Sim::new(7);
        let ids = boot_cluster(&mut sim, v("2.0.0"), 1);
        cmd(&mut sim, ids[0], "CREATE_KS stress");
        cmd(&mut sim, ids[0], "CREATE_TABLE stress.standard1");
        assert_eq!(cmd(&mut sim, ids[0], "PUT stress.standard1 k1 v1"), "OK");
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "2.1.0",
            Box::new(KvNode::new(v("2.1.0"), NodeSetup::new(0, 1))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_millis(50));
        let resp = cmd(&mut sim, ids[0], "GET stress.standard1 k1");
        assert!(resp.starts_with("ERR corrupt sstable row"), "got {resp}");
    }

    #[test]
    fn cassandra_13441_migration_storm_after_3_11_upgrade() {
        let mut sim = Sim::new(8);
        let ids = boot_cluster(&mut sim, v("3.0.0"), 3);
        cmd(&mut sim, ids[0], "CREATE_KS stress");
        sim.run_for(SimDuration::from_secs(2));
        let baseline = sim.messages_delivered();
        // Upgrade one node to 3.11 (rolling step).
        sim.stop_node(ids[0]).unwrap();
        sim.install(
            ids[0],
            "3.11.0",
            Box::new(KvNode::new(v("3.11.0"), NodeSetup::new(0, 3))),
        )
        .unwrap();
        sim.start_node(ids[0]).unwrap();
        sim.run_for(SimDuration::from_secs(10));
        let during = sim.messages_delivered() - baseline;
        // The storm floods the cluster far beyond gossip's steady state
        // (~12 messages/sec for 3 nodes).
        assert!(during > 2000, "only {during} messages during storm window");
        // Yet no node crashed and data still serves: pure perf degradation.
        assert!(sim.crashed_nodes().is_empty());
    }

    #[test]
    fn no_storm_without_upgrade_in_3_11() {
        // The storm must be an *upgrade* failure: a fresh 3.11 cluster with
        // schema churn stays calm.
        let mut sim = Sim::new(9);
        let ids = boot_cluster(&mut sim, v("3.11.0"), 3);
        cmd(&mut sim, ids[0], "CREATE_KS stress");
        cmd(&mut sim, ids[0], "CREATE_TABLE stress.standard1");
        let baseline = sim.messages_delivered();
        sim.run_for(SimDuration::from_secs(10));
        let during = sim.messages_delivered() - baseline;
        assert!(during < 500, "{during} messages in a healthy cluster");
    }

    #[test]
    fn full_stop_upgrade_2_1_to_3_0_is_clean() {
        // Control pair: data written on 2.1 reads back fine on 3.0.
        let mut sim = Sim::new(10);
        let ids = boot_cluster(&mut sim, v("2.1.0"), 2);
        cmd(&mut sim, ids[0], "CREATE_KS stress");
        cmd(&mut sim, ids[0], "CREATE_TABLE stress.standard1");
        cmd(&mut sim, ids[0], "PUT stress.standard1 k1 v1");
        sim.run_for(SimDuration::from_secs(1));
        for &id in &ids {
            sim.stop_node(id).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            sim.install(
                id,
                "3.0.0",
                Box::new(KvNode::new(v("3.0.0"), NodeSetup::new(i as u32, 2))),
            )
            .unwrap();
            sim.start_node(id).unwrap();
        }
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(cmd(&mut sim, ids[0], "GET stress.standard1 k1"), "OK v1");
        assert!(sim.crashed_nodes().is_empty());
    }
}
