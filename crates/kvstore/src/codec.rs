//! Version-specific wire formats of the mini key-value store.
//!
//! Every release carries its own gossip, schema-file, and data-file formats;
//! the *differences* between consecutive formats are the studied Cassandra
//! upgrade bugs re-implemented byte-for-byte in mechanism:
//!
//! - 1.1 → 1.2 changes the gossip `schema_id` from a numeric id to a string
//!   UUID **under the same tag** — the CASSANDRA-4195 incompatibility;
//! - 1.2 → 2.0 restructures the schema payload (keyspace `name` moves to a
//!   new tag and gains a required `strategy`) — the pull-schema payload an
//!   old node cannot parse (CASSANDRA-6678's consequence);
//! - 2.0 → 2.1 starts framing data files; 2.1 ships **no legacy reader**, so
//!   rows written by 2.0 read back as corrupt (the CASSANDRA-16257 shape);
//! - 4.0 bumps the commit-log format to 40, which 3.x cannot read — the
//!   mechanism that blocks downgrade in CASSANDRA-15794.

use dup_core::VersionId;
use dup_wire::{
    proto, EnumDescriptor, FieldDescriptor, FieldType, Frame, MessageDescriptor, MessageValue,
    Schema, Value, WireError,
};

/// Messaging protocol identifiers per release (the CASSANDRA-5102 lesson:
/// these were allocated densely, leaving no room between 1.2 and 2.0).
///
/// 3.0 and 3.11 deliberately share messaging version 10, as the real
/// releases do — that sharing is what lets schema migrations flow between
/// them and makes the CASSANDRA-13441 storm possible.
pub fn proto_version(v: VersionId) -> u32 {
    match (v.major, v.minor) {
        (1, 1) => 5,
        (1, 2) => 6,
        (2, 0) => 7,
        (2, 1) => 8,
        (3, _) => 10,
        _ => 12, // 4.0
    }
}

/// A distinct identifier per *release* (unlike [`proto_version`], which two
/// releases may share). Used to stamp storage files with their writer.
pub fn release_id(v: VersionId) -> u32 {
    v.major * 10_000 + v.minor * 100 + v.patch
}

/// Recovers the messaging protocol version from a [`release_id`].
pub fn proto_from_release(release: u32) -> u32 {
    proto_version(VersionId::new(
        release / 10_000,
        (release / 100) % 100,
        release % 100,
    ))
}

/// Schema-file/pull format id: format A (`1`) before 2.0, format B (`2`) after.
pub fn schema_format(v: VersionId) -> u32 {
    if v.major < 2 {
        1
    } else {
        2
    }
}

/// Commit-log segment format id.
pub fn commitlog_format(v: VersionId) -> u32 {
    match v.major {
        1 => 12,
        2 => 21,
        3 => 31,
        _ => 40,
    }
}

/// Data-row file format: raw bytes before 2.1, framed from 2.1 on.
pub fn data_rows_framed(v: VersionId) -> bool {
    v > VersionId::new(2, 0, u32::MAX) || (v.major == 2 && v.minor >= 1) || v.major >= 3
}

/// The gossip digest schema of `v`.
///
/// Tag 3 is `schema_id: uint64` in 1.1 and `schema_uuid: string` from 1.2 —
/// same tag, different wire type (CASSANDRA-4195). From 2.1 the digest also
/// carries the sender's protocol version (the CASSANDRA-6678 fix).
pub fn gossip_schema(v: VersionId) -> Schema {
    let mut m = MessageDescriptor::new("GossipDigest")
        .with(FieldDescriptor::required(
            1,
            "generation",
            FieldType::Uint64,
        ))
        .with(FieldDescriptor::required(2, "schema_ts", FieldType::Uint64));
    if v.major == 1 && v.minor == 1 {
        m = m.with(FieldDescriptor::required(3, "schema_id", FieldType::Uint64));
    } else {
        m = m.with(FieldDescriptor::required(3, "schema_uuid", FieldType::Str));
    }
    if proto_version(v) >= 8 {
        m = m.with(FieldDescriptor::optional(
            4,
            "proto_version",
            FieldType::Uint32,
        ));
    }
    Schema::new().with_message(m)
}

/// The handshake message (all versions).
pub fn handshake_schema() -> Schema {
    Schema::new().with_message(
        MessageDescriptor::new("Handshake").with(FieldDescriptor::required(
            1,
            "proto_version",
            FieldType::Uint32,
        )),
    )
}

/// The schema-file format of `v`.
///
/// Format A (pre-2.0): `Keyspace { name=1, repeated Table tables=2 }`.
/// Format B (2.0+): `Keyspace { strategy=1 required, name=2, dropped=3,
/// repeated Table tables=4 }` — `name` moved off tag 1, so a format-A reader
/// fed format-B bytes fails with a type mismatch or missing field.
pub fn schema_file_schema(v: VersionId) -> Schema {
    let (ks, table);
    if schema_format(v) == 1 {
        table = MessageDescriptor::new("Table").with(FieldDescriptor::required(
            1,
            "name",
            FieldType::Str,
        ));
        ks = MessageDescriptor::new("Keyspace")
            .with(FieldDescriptor::required(1, "name", FieldType::Str))
            .with(FieldDescriptor::repeated(
                2,
                "tables",
                FieldType::Message("Table".into()),
            ));
    } else {
        table = MessageDescriptor::new("Table")
            .with(FieldDescriptor::required(1, "name", FieldType::Str))
            .with(FieldDescriptor::optional(2, "compact", FieldType::Bool));
        ks = MessageDescriptor::new("Keyspace")
            .with(FieldDescriptor::required(1, "strategy", FieldType::Str))
            .with(FieldDescriptor::required(2, "name", FieldType::Str))
            .with(FieldDescriptor::optional(3, "dropped", FieldType::Bool))
            .with(FieldDescriptor::repeated(
                4,
                "tables",
                FieldType::Message("Table".into()),
            ));
    }
    Schema::new()
        .with_message(
            MessageDescriptor::new("SchemaFile")
                .with(FieldDescriptor::required(1, "timestamp", FieldType::Uint64))
                .with(FieldDescriptor::repeated(
                    2,
                    "keyspaces",
                    FieldType::Message("Keyspace".into()),
                )),
        )
        .with_message(ks)
        .with_message(table)
        .with_enum(EnumDescriptor::new(
            "SchemaKind",
            &[("TABLES", 0), ("VIEWS", 1)],
        ))
}

/// In-memory schema state shared by all versions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemaState {
    /// Monotonic schema timestamp (drives migrations).
    pub timestamp: u64,
    /// Keyspaces by name.
    pub keyspaces: Vec<KeyspaceDef>,
}

/// One keyspace definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyspaceDef {
    /// Keyspace name.
    pub name: String,
    /// Replication strategy class name.
    pub strategy: String,
    /// `true` if dropped (format-B tombstone).
    pub dropped: bool,
    /// Tables: `(name, compact_storage)`.
    pub tables: Vec<(String, bool)>,
}

impl SchemaState {
    /// Looks up a keyspace.
    pub fn keyspace(&self, name: &str) -> Option<&KeyspaceDef> {
        self.keyspaces.iter().find(|k| k.name == name)
    }

    /// Looks up a keyspace mutably.
    pub fn keyspace_mut(&mut self, name: &str) -> Option<&mut KeyspaceDef> {
        self.keyspaces.iter_mut().find(|k| k.name == name)
    }

    /// Returns `true` if `ks.table` exists and is not dropped.
    pub fn has_table(&self, ks: &str, table: &str) -> bool {
        self.keyspace(ks)
            .is_some_and(|k| !k.dropped && k.tables.iter().any(|(t, _)| t == table))
    }
}

/// Serializes `state` in `v`'s schema-file format, wrapped in a [`Frame`]
/// whose version field records the *writer's* protocol version.
pub fn encode_schema_state(v: VersionId, state: &SchemaState) -> Result<Vec<u8>, WireError> {
    let schema = schema_file_schema(v);
    let fmt = schema_format(v);
    let mut file = MessageValue::new("SchemaFile").set("timestamp", Value::U64(state.timestamp));
    for ks in &state.keyspaces {
        // Format A has nowhere to put tombstones; dropped keyspaces are
        // simply omitted (which is why 1.x never tripped the tombstone bug).
        if ks.dropped && fmt == 1 {
            continue;
        }
        let mut kv = MessageValue::new("Keyspace").set("name", Value::Str(ks.name.clone()));
        if fmt == 2 {
            kv.put("strategy", Value::Str(ks.strategy.clone()));
            if ks.dropped {
                kv.put("dropped", Value::Bool(true));
            }
        }
        for (t, compact) in &ks.tables {
            let mut tv = MessageValue::new("Table").set("name", Value::Str(t.clone()));
            if fmt == 2 && *compact {
                tv.put("compact", Value::Bool(true));
            }
            kv.push_mut("tables", Value::Msg(tv));
        }
        file.push_mut("keyspaces", Value::Msg(kv));
    }
    let body = proto::encode(&schema, &file)?;
    Ok(Frame::new(release_id(v), "schema_file", body)
        .encode()
        .to_vec())
}

/// Result of decoding a schema file: the state plus the writer's release
/// (so a reader can tell it was written by an older version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSchema {
    /// The decoded state.
    pub state: SchemaState,
    /// [`release_id`] of the writer.
    pub writer_release: u32,
}

impl DecodedSchema {
    /// Messaging protocol version of the writer.
    pub fn writer_proto(&self) -> u32 {
        proto_from_release(self.writer_release)
    }
}

/// Decodes a schema file with `v`'s own format, falling back to the legacy
/// format-A reader if `v` has one (2.0+ ships a converter; 1.x does not
/// understand format B and errors out).
pub fn decode_schema_state(v: VersionId, bytes: &[u8]) -> Result<DecodedSchema, WireError> {
    let frame = Frame::decode(bytes)?;
    let writer_release = frame.version;
    let own_fmt = schema_format(v);
    // Releases before 2.0.0 wrote format A; 2.0.0 and later wrote format B.
    let written_fmt = if writer_release < 20_000 { 1 } else { 2 };
    if written_fmt == own_fmt {
        let state = decode_with_format(v, own_fmt, &frame.body)?;
        return Ok(DecodedSchema {
            state,
            writer_release,
        });
    }
    if own_fmt == 2 && written_fmt == 1 {
        // Legacy converter: read format A, default the strategy.
        let state = decode_with_format(v, 1, &frame.body)?;
        return Ok(DecodedSchema {
            state,
            writer_release,
        });
    }
    // A format-A reader fed format-B bytes: decode with its own descriptor
    // and fail the way 1.x actually failed — no version check, just a parse
    // error (paper §4.1.1, "missing deserialization functions").
    let state = decode_with_format(v, 1, &frame.body)?;
    Ok(DecodedSchema {
        state,
        writer_release,
    })
}

fn decode_with_format(v: VersionId, fmt: u32, body: &[u8]) -> Result<SchemaState, WireError> {
    let schema = if fmt == schema_format(v) {
        schema_file_schema(v)
    } else {
        // The legacy (or mismatched) descriptor: any pre-2.0 release's view.
        schema_file_schema(VersionId::new(1, 2, 0))
    };
    let file = proto::decode(&schema, "SchemaFile", body)?;
    let mut state = SchemaState {
        timestamp: file.get_u64("timestamp")?,
        keyspaces: Vec::new(),
    };
    for ksv in file.get_all("keyspaces") {
        let Value::Msg(ksv) = ksv else {
            continue;
        };
        let mut ks = KeyspaceDef {
            name: ksv.get_str("name")?.to_string(),
            strategy: ksv
                .get_str("strategy")
                .unwrap_or("SimpleStrategy")
                .to_string(),
            dropped: ksv.get_bool("dropped").unwrap_or(false),
            tables: Vec::new(),
        };
        for tv in ksv.get_all("tables") {
            let Value::Msg(tv) = tv else {
                continue;
            };
            ks.tables.push((
                tv.get_str("name")?.to_string(),
                tv.get_bool("compact").unwrap_or(false),
            ));
        }
        state.keyspaces.push(ks);
    }
    Ok(state)
}

/// Encodes a data row in `v`'s format (raw before 2.1, framed after).
pub fn encode_row(v: VersionId, value: &str) -> Vec<u8> {
    if data_rows_framed(v) {
        Frame::new(proto_version(v), "row", value.as_bytes().to_vec())
            .encode()
            .to_vec()
    } else {
        value.as_bytes().to_vec()
    }
}

/// Decodes a data row with `v`'s reader.
///
/// 2.1+ **requires** the frame — it shipped without a raw-row fallback, so
/// rows written by ≤2.0 fail to read after the upgrade.
pub fn decode_row(v: VersionId, bytes: &[u8]) -> Result<String, WireError> {
    if data_rows_framed(v) {
        let frame = Frame::decode(bytes)?;
        Ok(String::from_utf8_lossy(&frame.body).into_owned())
    } else {
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V11: VersionId = VersionId::new(1, 1, 0);
    const V12: VersionId = VersionId::new(1, 2, 0);
    const V20: VersionId = VersionId::new(2, 0, 0);
    const V21: VersionId = VersionId::new(2, 1, 0);
    const V40: VersionId = VersionId::new(4, 0, 0);

    fn sample_state() -> SchemaState {
        SchemaState {
            timestamp: 9,
            keyspaces: vec![KeyspaceDef {
                name: "stress".into(),
                strategy: "SimpleStrategy".into(),
                dropped: false,
                tables: vec![("standard1".into(), false)],
            }],
        }
    }

    #[test]
    fn proto_versions_are_nondecreasing_and_3x_shares_10() {
        let vs = [
            V11,
            V12,
            V20,
            V21,
            VersionId::new(3, 0, 0),
            VersionId::new(3, 11, 0),
            V40,
        ];
        for w in vs.windows(2) {
            assert!(
                proto_version(w[0]) <= proto_version(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // As in real Cassandra, 3.0 and 3.11 share a messaging version.
        assert_eq!(
            proto_version(VersionId::new(3, 0, 0)),
            proto_version(VersionId::new(3, 11, 0))
        );
        // Release ids are strictly distinct.
        let mut ids: Vec<u32> = vs.iter().map(|v| release_id(*v)).collect();
        ids.dedup();
        assert_eq!(ids.len(), vs.len());
        assert_eq!(proto_from_release(release_id(V21)), 8);
    }

    #[test]
    fn gossip_digest_incompatible_between_1_1_and_1_2() {
        // CASSANDRA-4195: 1.2 writes a string UUID at tag 3; 1.1 expects a
        // varint there and fails with a wire-type mismatch.
        let new = gossip_schema(V12);
        let digest = MessageValue::new("GossipDigest")
            .set("generation", Value::U64(1))
            .set("schema_ts", Value::U64(5))
            .set("schema_uuid", Value::Str("3f0c-11".into()));
        let bytes = proto::encode(&new, &digest).unwrap();
        let old = gossip_schema(V11);
        let err = proto::decode(&old, "GossipDigest", &bytes).unwrap_err();
        assert!(matches!(err, WireError::TypeMismatch { .. }));
    }

    #[test]
    fn gossip_carries_version_only_from_2_1() {
        assert!(gossip_schema(V20)
            .message("GossipDigest")
            .unwrap()
            .field_by_name("proto_version")
            .is_none());
        assert!(gossip_schema(V21)
            .message("GossipDigest")
            .unwrap()
            .field_by_name("proto_version")
            .is_some());
    }

    #[test]
    fn schema_file_roundtrip_same_version() {
        for v in [V11, V20, V40] {
            let bytes = encode_schema_state(v, &sample_state()).unwrap();
            let back = decode_schema_state(v, &bytes).unwrap();
            assert_eq!(back.state, sample_state(), "version {v}");
            assert_eq!(back.writer_release, release_id(v));
            assert_eq!(back.writer_proto(), proto_version(v));
        }
    }

    #[test]
    fn format_b_reader_converts_format_a() {
        let bytes = encode_schema_state(V12, &sample_state()).unwrap();
        let back = decode_schema_state(V20, &bytes).unwrap();
        assert_eq!(back.state.keyspaces[0].strategy, "SimpleStrategy");
        assert_eq!(back.writer_release, 10_200);
    }

    #[test]
    fn format_a_reader_chokes_on_format_b() {
        // The 1.2-node-pulls-2.0-schema failure path (CASSANDRA-6678 aftermath).
        let bytes = encode_schema_state(V20, &sample_state()).unwrap();
        let err = decode_schema_state(V12, &bytes).unwrap_err();
        // `name` moved to tag 2; tag 1 is now the strategy string, so the
        // old reader misreads the strategy as the name and then tries to
        // parse the name string as a nested Table message — a garbage parse.
        assert!(
            matches!(
                err,
                WireError::TypeMismatch { .. }
                    | WireError::MissingRequired { .. }
                    | WireError::BadWireType { .. }
                    | WireError::Truncated
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn compact_and_tombstone_survive_format_b() {
        let mut state = sample_state();
        state.keyspaces[0].tables[0].1 = true;
        state.keyspaces.push(KeyspaceDef {
            name: "ghost".into(),
            strategy: "SimpleStrategy".into(),
            dropped: true,
            tables: vec![],
        });
        let bytes = encode_schema_state(V40, &state).unwrap();
        let back = decode_schema_state(V40, &bytes).unwrap().state;
        assert!(back.keyspaces[0].tables[0].1);
        assert!(back.keyspace("ghost").unwrap().dropped);
    }

    #[test]
    fn dropped_keyspaces_are_omitted_by_format_a_writers() {
        let mut state = sample_state();
        state.keyspaces[0].dropped = true;
        let bytes = encode_schema_state(V11, &state).unwrap();
        let back = decode_schema_state(V11, &bytes).unwrap().state;
        assert!(back.keyspaces.is_empty());
    }

    #[test]
    fn row_format_breaks_at_2_1() {
        // 2.0 writes raw rows; 2.1 requires frames (CASSANDRA-16257 shape).
        let raw = encode_row(V20, "hello");
        assert!(decode_row(V21, &raw).is_err());
        assert_eq!(decode_row(V20, &raw).unwrap(), "hello");
        let framed = encode_row(V21, "hello");
        assert_eq!(decode_row(V21, &framed).unwrap(), "hello");
        assert_eq!(decode_row(V40, &framed).unwrap(), "hello");
    }

    #[test]
    fn commitlog_formats() {
        assert_eq!(commitlog_format(V12), 12);
        assert_eq!(commitlog_format(V21), 21);
        assert_eq!(commitlog_format(VersionId::new(3, 11, 0)), 31);
        assert_eq!(commitlog_format(V40), 40);
    }

    #[test]
    fn schema_state_lookups() {
        let s = sample_state();
        assert!(s.has_table("stress", "standard1"));
        assert!(!s.has_table("stress", "other"));
        assert!(!s.has_table("nope", "standard1"));
    }
}
