//! The [`SystemUnderTest`] implementation: version catalog, stress workload,
//! unit tests, and the unit-test translation table (paper §6.1.3).

use crate::codec::{self, KeyspaceDef};
use crate::node::KvNode;
use dup_core::{
    ClientOp, NodeSetup, SystemUnderTest, TranslationTable, UnitStatement, UnitTest, VersionId,
    WorkloadPhase,
};
use dup_simnet::{HostStorage, Process, SimRng};

/// The mini Cassandra-like key-value store as a DUPTester subject.
#[derive(Debug, Default, Clone, Copy)]
pub struct KvStoreSystem;

impl KvStoreSystem {
    /// The release history, oldest first.
    pub fn release_history() -> Vec<VersionId> {
        [
            "1.1.0", "1.2.0", "2.0.0", "2.1.0", "3.0.0", "3.11.0", "4.0.0",
        ]
        .iter()
        .map(|s| s.parse().expect("static version strings parse"))
        .collect()
    }
}

impl SystemUnderTest for KvStoreSystem {
    fn name(&self) -> &'static str {
        "cassandra-mini"
    }

    fn versions(&self) -> Vec<VersionId> {
        Self::release_history()
    }

    fn cluster_size(&self) -> u32 {
        3
    }

    fn spawn(&self, version: VersionId, setup: &NodeSetup) -> Box<dyn Process> {
        Box::new(KvNode::new(version, setup.clone()))
    }

    fn stress_ops(
        &self,
        seed: u64,
        phase: WorkloadPhase,
        _client_version: VersionId,
        emit: &mut dyn FnMut(ClientOp),
    ) {
        // XOR a per-system constant so different systems draw different ops
        // from the same campaign seed. Data is not replicated across peers,
        // so reads are routed to the same node the key was written to.
        let mut rng = SimRng::new(seed ^ 0x6b76);
        let n = self.cluster_size();
        let route = |k: u64| (k % u64::from(n)) as u32;
        match phase {
            WorkloadPhase::BeforeUpgrade => {
                emit(ClientOp::new(0, "CREATE_KS stress"));
                emit(ClientOp::new(0, "CREATE_TABLE stress.standard1"));
                for k in 0..10u64 {
                    emit(ClientOp::new(
                        route(k),
                        format!("PUT stress.standard1 key{k} val{k}"),
                    ));
                }
                let _ = rng.next_u64();
            }
            WorkloadPhase::DuringUpgrade => {
                for i in 0..12u64 {
                    if i % 3 == 0 {
                        let k = rng.next_below(10);
                        emit(ClientOp::new(
                            route(k),
                            format!("GET stress.standard1 key{k}"),
                        ));
                    } else {
                        emit(ClientOp::new(
                            route(i),
                            format!("PUT stress.standard1 mid{i} mv{i}"),
                        ));
                    }
                }
            }
            WorkloadPhase::AfterUpgrade => {
                for k in 0..10u64 {
                    emit(ClientOp::new(
                        route(k),
                        format!("GET stress.standard1 key{k}"),
                    ));
                }
                for node in 0..n {
                    emit(ClientOp::new(node, "HEALTH"));
                }
            }
        }
    }

    fn open_loop_op(
        &self,
        key: u64,
        client: u64,
        read: bool,
        _client_version: VersionId,
    ) -> ClientOp {
        // Open-loop keys live beside the stress keys in the stress table;
        // reads of never-written keys return the benign "ERR not found".
        let node = (key % u64::from(self.cluster_size())) as u32;
        if read {
            ClientOp::new(node, format!("GET stress.standard1 olk{key}"))
        } else {
            ClientOp::new(node, format!("PUT stress.standard1 olk{key} c{client}"))
        }
    }

    fn unit_tests(&self) -> Vec<UnitTest> {
        vec![
            // Translatable: creates two keyspaces, drops one. The DROP is the
            // operation stress testing never issues — the CASSANDRA-16292
            // discovery path.
            UnitTest::new(
                "testCachedPreparedStatements",
                vec![
                    UnitStatement::bind("ks1", "createKeyspace", &["ks1"]),
                    UnitStatement::bind("ks2", "createKeyspace", &["ks2"]),
                    UnitStatement::call("createTable", &["$ks1", "t1"]),
                    UnitStatement::call("createTable", &["$ks2", "t2"]),
                    UnitStatement::bind("stmt", "prepareInternal", &["SELECT * FROM t1"]),
                    UnitStatement::call("executePrepared", &["$stmt"]),
                    UnitStatement::call("dropKeyspace", &["$ks2"]),
                ],
            ),
            // Translatable: COMPACT STORAGE table — the CASSANDRA-15794 path.
            UnitTest::new(
                "testCompactTables",
                vec![
                    UnitStatement::bind("ks", "createKeyspace", &["legacy"]),
                    UnitStatement::call("createCompactTable", &["$ks", "cf"]),
                    UnitStatement::call("insertRow", &["$ks", "cf", "k", "v"]),
                ],
            ),
            // Only runnable in place (internal API): keyspace with a
            // non-default replication strategy — the CASSANDRA-16301 path.
            UnitTest::new(
                "testUpdateKeyspace",
                vec![UnitStatement::call(
                    "createKeyspaceWithStrategy",
                    &["old_ks", "OldNetworkTopologyStrategy"],
                )],
            )
            .with_config("replication_strategy", "OldNetworkTopologyStrategy"),
            // Translatable: exercises the tracing tool (CASSANDRA-10652 shape).
            UnitTest::new(
                "test_cqlsh_completion",
                vec![
                    UnitStatement::call("traceOn", &[]),
                    UnitStatement::call("createKeyspace", &["cqlsh_ks"]),
                ],
            ),
        ]
    }

    fn translation(&self) -> TranslationTable {
        TranslationTable::new()
            .rule("createKeyspace", "CREATE_KS {0}")
            .rule("createTable", "CREATE_TABLE {0}.{1}")
            .rule("createCompactTable", "CREATE_TABLE {0}.{1} COMPACT")
            .rule("insertRow", "PUT {0}.{1} {2} {3}")
            .rule("dropKeyspace", "DROP_KS {0}")
            .rule("traceOn", "TRACE ON")
    }

    fn run_unit_statement(
        &self,
        version: VersionId,
        statement: &UnitStatement,
        storage: &mut HostStorage,
    ) -> Result<(), String> {
        match (statement.call.as_str(), statement.args.as_slice()) {
            ("createKeyspaceWithStrategy", [name, strategy]) => {
                let mut state = match storage.read("schema") {
                    Some(bytes) => {
                        codec::decode_schema_state(version, bytes)
                            .map_err(|e| format!("cannot read schema: {e}"))?
                            .state
                    }
                    None => codec::SchemaState {
                        timestamp: 1,
                        keyspaces: Vec::new(),
                    },
                };
                state.keyspaces.push(KeyspaceDef {
                    name: name.clone(),
                    strategy: strategy.clone(),
                    dropped: false,
                    tables: Vec::new(),
                });
                state.timestamp += 1;
                let bytes = codec::encode_schema_state(version, &state)
                    .map_err(|e| format!("cannot write schema: {e}"))?;
                storage.write("schema", bytes);
                Ok(())
            }
            (other, _) => Err(format!("internal call '{other}' not supported in place")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-only compat shim over the streaming op API.
    fn stress_workload(
        s: &dyn SystemUnderTest,
        seed: u64,
        phase: WorkloadPhase,
        v: VersionId,
    ) -> Vec<ClientOp> {
        let mut ops = Vec::new();
        s.stress_ops(seed, phase, v, &mut |op| ops.push(op));
        ops
    }

    #[test]
    fn release_history_is_sorted_and_distinct() {
        let vs = KvStoreSystem::release_history();
        let mut sorted = vs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(vs, sorted);
        assert_eq!(vs.len(), 7);
    }

    #[test]
    fn stress_workload_is_deterministic_in_seed() {
        let s = KvStoreSystem;
        let v = VersionId::new(3, 0, 0);
        let a = stress_workload(&s, 7, WorkloadPhase::DuringUpgrade, v);
        let b = stress_workload(&s, 7, WorkloadPhase::DuringUpgrade, v);
        assert_eq!(a, b);
        let c = stress_workload(&s, 8, WorkloadPhase::DuringUpgrade, v);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_phases_have_expected_shape() {
        let s = KvStoreSystem;
        let v = VersionId::new(3, 0, 0);
        let before = stress_workload(&s, 1, WorkloadPhase::BeforeUpgrade, v);
        assert!(before.iter().any(|op| op.command.starts_with("CREATE_KS")));
        assert!(before.iter().any(|op| op.command.starts_with("PUT")));
        let after = stress_workload(&s, 1, WorkloadPhase::AfterUpgrade, v);
        assert!(after.iter().filter(|op| op.command == "HEALTH").count() >= 3);
        assert!(after.iter().any(|op| op.command.starts_with("GET")));
    }

    #[test]
    fn translation_covers_the_unit_test_corpus_except_internals() {
        let s = KvStoreSystem;
        let table = s.translation();
        assert!(table.template("createKeyspace").is_some());
        assert!(table.template("prepareInternal").is_none());
        assert!(table.template("createKeyspaceWithStrategy").is_none());
    }

    #[test]
    fn in_place_statement_writes_strategy_keyspace() {
        let s = KvStoreSystem;
        let mut storage = HostStorage::new();
        let stmt = UnitStatement::call(
            "createKeyspaceWithStrategy",
            &["old_ks", "OldNetworkTopologyStrategy"],
        );
        s.run_unit_statement(VersionId::new(3, 11, 0), &stmt, &mut storage)
            .unwrap();
        let decoded =
            codec::decode_schema_state(VersionId::new(3, 11, 0), storage.read("schema").unwrap())
                .unwrap();
        assert_eq!(
            decoded.state.keyspaces[0].strategy,
            "OldNetworkTopologyStrategy"
        );
        // Unsupported internal calls are refused.
        let bad = UnitStatement::call("prepareInternal", &["x"]);
        assert!(s
            .run_unit_statement(VersionId::new(3, 11, 0), &bad, &mut storage)
            .is_err());
    }
}
