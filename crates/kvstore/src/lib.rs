//! # dup-kvstore — a miniature versioned Cassandra-like store
//!
//! A peer-to-peer key-value store with gossip, schema migration, sstable-ish
//! data files, and a commit log — built as a DUPTester subject. Seven
//! releases (1.1.0 → 4.0.0) are implemented; the diffs between consecutive
//! releases re-create the studied Cassandra upgrade failures:
//!
//! | Seeded bug | Pair | Mechanism |
//! |---|---|---|
//! | CASSANDRA-4195  | 1.1 → 1.2 rolling | gossip `schema_id` becomes a string UUID under the same tag; old nodes wedge in schema migration |
//! | CASSANDRA-6678  | 1.2 → 2.0 rolling | gossip handled before the version handshake ⇒ pull from a newer node ⇒ unparseable schema ⇒ wedged (race) |
//! | CASSANDRA-16257 shape | 2.0 → 2.1 | 2.1 frames data rows but ships no raw-row reader; old rows read back corrupt |
//! | CASSANDRA-13441 | 3.0 → 3.11 | upgraded node re-regenerates system tables on every pull served ⇒ migration storm |
//! | CASSANDRA-16292 shape | 3.0 → 3.11 | DROP KEYSPACE tombstones crash the 3.11 schema loader |
//! | CASSANDRA-15794 | 3.11 → 4.0 | COMPACT STORAGE refused *after* the format-40 commit log header is written ⇒ no upgrade, no downgrade |
//! | CASSANDRA-16301 | 3.11 → 4.0 | `OldNetworkTopologyStrategy` removed; keyspaces created by a unit test crash the 4.0 loader |
//!
//! The clean pairs (2.1 → 3.0 and full-stop 1.2 → 2.0) are deliberate
//! controls: DUPTester must *not* report anything for them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod node;
mod sut;

pub use crate::node::KvNode;
pub use crate::sut::KvStoreSystem;
