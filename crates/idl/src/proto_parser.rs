//! Recursive-descent parser for the proto2 subset DUPChecker reads.
//!
//! Supported constructs: `syntax`, `package`, file- and message-level
//! `option` (skipped), `message` with nesting, `enum` (top-level and nested),
//! fields with `required`/`optional`/`repeated` labels, `[default = …]` and
//! other field options (recorded or skipped), `reserved` tags and names, and
//! `extensions` ranges (skipped). This covers every construct the checker
//! rules in the paper (§6.2) mention.

use crate::ast::{
    EnumDecl, EnumValueDecl, FieldDecl, FieldLabel, IdlFile, MessageDecl, SyntaxKind,
};
use crate::lexer::{lex, ParseError, Span, Token, TokenKind};

/// Parses proto2 source text.
pub fn parse_proto(input: &str) -> Result<IdlFile, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    p.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<Span, ParseError> {
        let t = self.advance();
        if t.kind == TokenKind::Punct(c) {
            Ok(t.span)
        } else {
            Err(ParseError::new(
                t.span,
                format!("expected '{c}', found {}", t.kind),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<(String, Span), ParseError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.span)),
            other => Err(ParseError::new(
                t.span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn eat_int(&mut self) -> Result<(i64, Span), ParseError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Int(v) => Ok((v, t.span)),
            other => Err(ParseError::new(
                t.span,
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    fn file(&mut self) -> Result<IdlFile, ParseError> {
        let mut file = IdlFile {
            syntax: SyntaxKind::Proto2,
            package: None,
            messages: Vec::new(),
            enums: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "syntax" => {
                        self.advance();
                        self.eat_punct('=')?;
                        let t = self.advance();
                        if !matches!(t.kind, TokenKind::Str(_)) {
                            return Err(ParseError::new(
                                t.span,
                                "expected string after 'syntax ='",
                            ));
                        }
                        self.eat_punct(';')?;
                    }
                    "package" => {
                        self.advance();
                        let (name, _) = self.eat_ident()?;
                        file.package = Some(name);
                        self.eat_punct(';')?;
                    }
                    "option" => self.skip_option()?,
                    "import" => {
                        self.advance();
                        // `import "x.proto";` or `import public "x.proto";`
                        if self.is_ident("public") || self.is_ident("weak") {
                            self.advance();
                        }
                        self.advance(); // The string literal.
                        self.eat_punct(';')?;
                    }
                    "message" => {
                        self.advance();
                        self.message("", &mut file)?;
                    }
                    "enum" => {
                        self.advance();
                        let e = self.enum_decl("")?;
                        file.enums.push(e);
                    }
                    other => {
                        let span = self.peek().span;
                        return Err(ParseError::new(
                            span,
                            format!("unexpected top-level keyword '{other}'"),
                        ));
                    }
                },
                _ => {
                    let t = self.peek();
                    return Err(ParseError::new(t.span, format!("unexpected {}", t.kind)));
                }
            }
        }
        Ok(file)
    }

    fn skip_option(&mut self) -> Result<(), ParseError> {
        // `option name = value;` — value may be ident, int, or string.
        self.advance(); // 'option'
        self.eat_ident()?;
        self.eat_punct('=')?;
        self.advance(); // The value.
        self.eat_punct(';')?;
        Ok(())
    }

    fn message(&mut self, prefix: &str, file: &mut IdlFile) -> Result<(), ParseError> {
        let (name, span) = self.eat_ident()?;
        let full = if prefix.is_empty() {
            name
        } else {
            format!("{prefix}.{name}")
        };
        self.eat_punct('{')?;
        let mut decl = MessageDecl {
            name: full.clone(),
            fields: Vec::new(),
            reserved_tags: Vec::new(),
            reserved_names: Vec::new(),
            span,
        };
        loop {
            match self.peek().kind.clone() {
                TokenKind::Punct('}') => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => {
                    return Err(ParseError::new(
                        span,
                        format!("unterminated message {full}"),
                    ));
                }
                TokenKind::Ident(word) => match word.as_str() {
                    "message" => {
                        self.advance();
                        self.message(&full, file)?;
                    }
                    "enum" => {
                        self.advance();
                        let e = self.enum_decl(&full)?;
                        file.enums.push(e);
                    }
                    "option" => self.skip_option()?,
                    "reserved" => self.reserved(&mut decl)?,
                    "extensions" => {
                        // `extensions 100 to 199;` — skip to semicolon.
                        while self.peek().kind != TokenKind::Punct(';') {
                            if self.peek().kind == TokenKind::Eof {
                                return Err(ParseError::new(span, "unterminated extensions"));
                            }
                            self.advance();
                        }
                        self.advance();
                    }
                    "required" | "optional" | "repeated" => {
                        let field = self.field()?;
                        decl.fields.push(field);
                    }
                    other => {
                        let sp = self.peek().span;
                        return Err(ParseError::new(
                            sp,
                            format!("unexpected '{other}' in message {full} (proto2 fields need a label)"),
                        ));
                    }
                },
                other => {
                    let sp = self.peek().span;
                    return Err(ParseError::new(
                        sp,
                        format!("unexpected {other} in message {full}"),
                    ));
                }
            }
        }
        file.messages.push(decl);
        Ok(())
    }

    fn reserved(&mut self, decl: &mut MessageDecl) -> Result<(), ParseError> {
        self.advance(); // 'reserved'
        loop {
            match self.peek().kind.clone() {
                TokenKind::Int(v) => {
                    self.advance();
                    let lo = u32::try_from(v)
                        .map_err(|_| ParseError::new(self.peek().span, "negative reserved tag"))?;
                    if self.is_ident("to") {
                        self.advance();
                        let (hi, sp) = self.eat_int()?;
                        let hi = u32::try_from(hi)
                            .map_err(|_| ParseError::new(sp, "negative reserved tag"))?;
                        for t in lo..=hi {
                            decl.reserved_tags.push(t);
                        }
                    } else {
                        decl.reserved_tags.push(lo);
                    }
                }
                TokenKind::Str(s) => {
                    self.advance();
                    decl.reserved_names.push(s);
                }
                other => {
                    return Err(ParseError::new(
                        self.peek().span,
                        format!("expected tag or name in reserved, found {other}"),
                    ));
                }
            }
            match self.peek().kind {
                TokenKind::Punct(',') => {
                    self.advance();
                }
                TokenKind::Punct(';') => {
                    self.advance();
                    return Ok(());
                }
                _ => {
                    let t = self.peek();
                    return Err(ParseError::new(
                        t.span,
                        format!("expected ',' or ';', found {}", t.kind),
                    ));
                }
            }
        }
    }

    fn field(&mut self) -> Result<FieldDecl, ParseError> {
        let (label_word, span) = self.eat_ident()?;
        let label = match label_word.as_str() {
            "required" => FieldLabel::Required,
            "optional" => FieldLabel::Optional,
            "repeated" => FieldLabel::Repeated,
            _ => unreachable!("caller checked the label keyword"),
        };
        let (type_name, _) = self.eat_ident()?;
        let (name, _) = self.eat_ident()?;
        self.eat_punct('=')?;
        let (tag, tag_span) = self.eat_int()?;
        let tag = u32::try_from(tag)
            .map_err(|_| ParseError::new(tag_span, format!("invalid field tag {tag}")))?;
        let mut default = None;
        if self.peek().kind == TokenKind::Punct('[') {
            self.advance();
            // Parse `[name = value, name = value]`, remembering `default`.
            loop {
                let (opt_name, _) = self.eat_ident()?;
                self.eat_punct('=')?;
                let value = self.advance();
                if opt_name == "default" {
                    default = Some(match value.kind {
                        TokenKind::Ident(s) | TokenKind::Str(s) => s,
                        TokenKind::Int(v) => v.to_string(),
                        other => {
                            return Err(ParseError::new(
                                value.span,
                                format!("bad default value: {other}"),
                            ))
                        }
                    });
                }
                match self.peek().kind {
                    TokenKind::Punct(',') => {
                        self.advance();
                    }
                    TokenKind::Punct(']') => {
                        self.advance();
                        break;
                    }
                    _ => {
                        let t = self.peek();
                        return Err(ParseError::new(
                            t.span,
                            format!("expected ',' or ']', found {}", t.kind),
                        ));
                    }
                }
            }
        }
        self.eat_punct(';')?;
        Ok(FieldDecl {
            label,
            type_name,
            name,
            tag,
            default,
            span,
        })
    }

    fn enum_decl(&mut self, prefix: &str) -> Result<EnumDecl, ParseError> {
        let (name, span) = self.eat_ident()?;
        let full = if prefix.is_empty() {
            name
        } else {
            format!("{prefix}.{name}")
        };
        self.eat_punct('{')?;
        let mut values = Vec::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Punct('}') => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => {
                    return Err(ParseError::new(span, format!("unterminated enum {full}")));
                }
                TokenKind::Ident(word) if word == "option" => self.skip_option()?,
                TokenKind::Ident(_) => {
                    let (vname, vspan) = self.eat_ident()?;
                    self.eat_punct('=')?;
                    let (number, nspan) = self.eat_int()?;
                    let number = i32::try_from(number)
                        .map_err(|_| ParseError::new(nspan, "enum number out of range"))?;
                    self.eat_punct(';')?;
                    values.push(EnumValueDecl {
                        name: vname,
                        number,
                        span: vspan,
                    });
                }
                other => {
                    let sp = self.peek().span;
                    return Err(ParseError::new(
                        sp,
                        format!("unexpected {other} in enum {full}"),
                    ));
                }
            }
        }
        Ok(EnumDecl {
            name: full,
            values,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact proto diff of paper Figure 2.
    const SINK_V2: &str = r#"
        syntax = "proto2";
        package hbase.pb;

        message ReplicationLoadSink {
            required uint64 ageOfLastAppliedOp = 1;
            required uint64 timestampStarted = 3;
        }
    "#;

    #[test]
    fn parses_figure_2() {
        let file = parse_proto(SINK_V2).unwrap();
        assert_eq!(file.package.as_deref(), Some("hbase.pb"));
        let m = file.message("ReplicationLoadSink").unwrap();
        assert_eq!(m.fields.len(), 2);
        assert_eq!(m.fields[1].name, "timestampStarted");
        assert_eq!(m.fields[1].tag, 3);
        assert_eq!(m.fields[1].label, FieldLabel::Required);
    }

    #[test]
    fn parses_nested_messages_and_enums() {
        let src = r#"
            message Outer {
                optional Inner inner = 1;
                message Inner {
                    required int32 x = 1;
                }
                enum Mode { FAST = 0; SAFE = 1; }
                optional Mode mode = 2 [default = FAST];
            }
        "#;
        let file = parse_proto(src).unwrap();
        assert!(file.message("Outer").is_some());
        assert!(file.message("Outer.Inner").is_some());
        let e = file.enum_decl("Outer.Mode").unwrap();
        assert_eq!(e.values.len(), 2);
        assert_eq!(
            file.message("Outer")
                .unwrap()
                .field("mode")
                .unwrap()
                .default
                .as_deref(),
            Some("FAST")
        );
    }

    #[test]
    fn parses_reserved() {
        let src = r#"
            message M {
                reserved 2, 4 to 6;
                reserved "legacy", "older";
                optional string live = 1;
            }
        "#;
        let m = parse_proto(src).unwrap();
        let m = m.message("M").unwrap();
        assert_eq!(m.reserved_tags, vec![2, 4, 5, 6]);
        assert_eq!(
            m.reserved_names,
            vec!["legacy".to_string(), "older".to_string()]
        );
    }

    #[test]
    fn skips_options_and_imports() {
        let src = r#"
            syntax = "proto2";
            import "other.proto";
            option java_package = "org.example";
            message M {
                option deprecated = true;
                optional int64 f = 1 [deprecated = true, default = 9];
            }
        "#;
        let file = parse_proto(src).unwrap();
        assert_eq!(
            file.message("M")
                .unwrap()
                .field("f")
                .unwrap()
                .default
                .as_deref(),
            Some("9")
        );
    }

    #[test]
    fn rejects_label_free_fields() {
        // proto2 requires a label; a missing one is a parse error.
        let err = parse_proto("message M { int32 x = 1; }").unwrap_err();
        assert!(err.message.contains("label"));
    }

    #[test]
    fn rejects_unterminated_message() {
        assert!(parse_proto("message M { optional int32 x = 1;").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_proto("mesage M {}").is_err());
        assert!(parse_proto("message M { optional int32 = 1; }").is_err());
    }

    #[test]
    fn enum_numbers_preserved_in_declaration_order() {
        let src = "enum StorageType { DISK = 0; SSD = 1; NVDIMM = 2; ARCHIVE = 3; }";
        let file = parse_proto(src).unwrap();
        let e = file.enum_decl("StorageType").unwrap();
        let names: Vec<_> = e.values.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["DISK", "SSD", "NVDIMM", "ARCHIVE"]);
        assert!(e.has_zero());
    }

    #[test]
    fn extensions_are_skipped() {
        let src = "message M { extensions 100 to 199; optional bool b = 1; }";
        assert!(parse_proto(src)
            .unwrap()
            .message("M")
            .unwrap()
            .field("b")
            .is_some());
    }
}
