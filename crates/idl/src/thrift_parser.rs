//! Recursive-descent parser for the Thrift subset DUPChecker reads.
//!
//! Supported constructs: `namespace`, `include` (skipped), `struct` with
//! numbered fields (`1: required string name,`), `required`/`optional`
//! qualifiers (default-requiredness maps to `optional`, matching Thrift's
//! "default requiredness" behaviour on the read path), `list<T>`/`set<T>` as
//! repeated fields, `map<K,V>` (recorded with a synthetic type name),
//! `enum` with explicit or auto-incremented numbers, `typedef` (recorded as
//! an alias and resolved textually), and `const` (skipped).

use crate::ast::{
    EnumDecl, EnumValueDecl, FieldDecl, FieldLabel, IdlFile, MessageDecl, SyntaxKind,
};
use crate::lexer::{lex, ParseError, Token, TokenKind};
use std::collections::BTreeMap;

/// Parses Thrift source text.
pub fn parse_thrift(input: &str) -> Result<IdlFile, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        typedefs: BTreeMap::new(),
    };
    p.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    typedefs: BTreeMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<(), ParseError> {
        let t = self.advance();
        if t.kind == TokenKind::Punct(c) {
            Ok(())
        } else {
            Err(ParseError::new(
                t.span,
                format!("expected '{c}', found {}", t.kind),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                t.span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    fn file(&mut self) -> Result<IdlFile, ParseError> {
        let mut file = IdlFile {
            syntax: SyntaxKind::Thrift,
            package: None,
            messages: Vec::new(),
            enums: Vec::new(),
        };
        loop {
            match self.peek().kind.clone() {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => match word.as_str() {
                    "namespace" => {
                        self.advance();
                        self.eat_ident()?; // Language tag (`java`, `cpp`, …).
                        file.package = Some(self.eat_ident()?);
                    }
                    "include" => {
                        self.advance();
                        self.advance(); // The string literal.
                    }
                    "typedef" => {
                        self.advance();
                        let target = self.read_type()?;
                        let alias = self.eat_ident()?;
                        self.typedefs.insert(alias, target.0);
                    }
                    "const" => {
                        // `const <type> NAME = value` — values can be
                        // literals or simple lists; skip to end of line by
                        // consuming until the next top-level keyword. We
                        // conservatively consume `<type> NAME = <one token>`.
                        self.advance();
                        self.read_type()?;
                        self.eat_ident()?;
                        self.eat_punct('=')?;
                        self.advance();
                    }
                    "struct" | "union" | "exception" => {
                        self.advance();
                        let m = self.struct_decl()?;
                        file.messages.push(m);
                    }
                    "enum" => {
                        self.advance();
                        let e = self.enum_decl()?;
                        file.enums.push(e);
                    }
                    "service" => self.skip_braced_block()?,
                    other => {
                        let span = self.peek().span;
                        return Err(ParseError::new(
                            span,
                            format!("unexpected top-level keyword '{other}'"),
                        ));
                    }
                },
                other => {
                    let span = self.peek().span;
                    return Err(ParseError::new(span, format!("unexpected {other}")));
                }
            }
        }
        Ok(file)
    }

    fn skip_braced_block(&mut self) -> Result<(), ParseError> {
        // `service Name { ... }` — skip the whole body.
        let start = self.peek().span;
        while self.peek().kind != TokenKind::Punct('{') {
            if self.peek().kind == TokenKind::Eof {
                return Err(ParseError::new(start, "expected '{'"));
            }
            self.advance();
        }
        let mut depth = 0i32;
        loop {
            match self.advance().kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Eof => return Err(ParseError::new(start, "unterminated block")),
                _ => {}
            }
        }
    }

    /// Reads a type expression; returns `(base type name, is_repeated)`.
    fn read_type(&mut self) -> Result<(String, bool), ParseError> {
        let name = self.eat_ident()?;
        match name.as_str() {
            "list" | "set" => {
                self.eat_punct('<')?;
                let (inner, _) = self.read_type()?;
                self.eat_punct('>')?;
                Ok((inner, true))
            }
            "map" => {
                self.eat_punct('<')?;
                let (k, _) = self.read_type()?;
                self.eat_punct(',')?;
                let (v, _) = self.read_type()?;
                self.eat_punct('>')?;
                Ok((format!("map<{k},{v}>"), true))
            }
            _ => {
                let resolved = self.typedefs.get(&name).cloned().unwrap_or(name);
                Ok((resolved, false))
            }
        }
    }

    fn struct_decl(&mut self) -> Result<MessageDecl, ParseError> {
        let t = self.peek().clone();
        let name = self.eat_ident()?;
        self.eat_punct('{')?;
        let mut fields = Vec::new();
        loop {
            match self.peek().kind.clone() {
                TokenKind::Punct('}') => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => {
                    return Err(ParseError::new(
                        t.span,
                        format!("unterminated struct {name}"),
                    ));
                }
                TokenKind::Int(id) => {
                    let span = self.peek().span;
                    self.advance();
                    let tag = u32::try_from(id)
                        .map_err(|_| ParseError::new(span, format!("invalid field id {id}")))?;
                    self.eat_punct(':')?;
                    let mut label = FieldLabel::Optional;
                    if self.is_ident("required") {
                        self.advance();
                        label = FieldLabel::Required;
                    } else if self.is_ident("optional") {
                        self.advance();
                    }
                    let (type_name, repeated) = self.read_type()?;
                    if repeated {
                        label = FieldLabel::Repeated;
                    }
                    let fname = self.eat_ident()?;
                    let mut default = None;
                    if self.peek().kind == TokenKind::Punct('=') {
                        self.advance();
                        default = Some(match self.advance().kind {
                            TokenKind::Ident(s) | TokenKind::Str(s) => s,
                            TokenKind::Int(v) => v.to_string(),
                            other => {
                                return Err(ParseError::new(
                                    span,
                                    format!("bad default value: {other}"),
                                ))
                            }
                        });
                    }
                    // Field separators are optional in thrift (`,` or `;`).
                    if matches!(
                        self.peek().kind,
                        TokenKind::Punct(',') | TokenKind::Punct(';')
                    ) {
                        self.advance();
                    }
                    fields.push(FieldDecl {
                        label,
                        type_name,
                        name: fname,
                        tag,
                        default,
                        span,
                    });
                }
                other => {
                    let span = self.peek().span;
                    return Err(ParseError::new(
                        span,
                        format!("expected field id or '}}' in struct {name}, found {other}"),
                    ));
                }
            }
        }
        Ok(MessageDecl {
            name,
            fields,
            reserved_tags: Vec::new(),
            reserved_names: Vec::new(),
            span: t.span,
        })
    }

    fn enum_decl(&mut self) -> Result<EnumDecl, ParseError> {
        let t = self.peek().clone();
        let name = self.eat_ident()?;
        self.eat_punct('{')?;
        let mut values = Vec::new();
        let mut next_number = 0i32;
        loop {
            match self.peek().kind.clone() {
                TokenKind::Punct('}') => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => {
                    return Err(ParseError::new(t.span, format!("unterminated enum {name}")));
                }
                TokenKind::Ident(_) => {
                    let span = self.peek().span;
                    let vname = self.eat_ident()?;
                    let number = if self.peek().kind == TokenKind::Punct('=') {
                        self.advance();
                        let tok = self.advance();
                        match tok.kind {
                            TokenKind::Int(v) => i32::try_from(v).map_err(|_| {
                                ParseError::new(tok.span, "enum number out of range")
                            })?,
                            other => {
                                return Err(ParseError::new(
                                    tok.span,
                                    format!("expected integer, found {other}"),
                                ))
                            }
                        }
                    } else {
                        next_number
                    };
                    next_number = number + 1;
                    if matches!(
                        self.peek().kind,
                        TokenKind::Punct(',') | TokenKind::Punct(';')
                    ) {
                        self.advance();
                    }
                    values.push(EnumValueDecl {
                        name: vname,
                        number,
                        span,
                    });
                }
                other => {
                    let span = self.peek().span;
                    return Err(ParseError::new(
                        span,
                        format!("unexpected {other} in enum {name}"),
                    ));
                }
            }
        }
        Ok(EnumDecl {
            name,
            values,
            span: t.span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCAN: &str = r#"
        namespace java org.apache.accumulo.core
        include "shared.thrift"

        typedef i64 ScanID

        struct ScanResult {
            1: required ScanID scanId,
            2: optional i32 more;
            3: list<string> results
            4: bool partial
        }

        enum ScanType { SINGLE, BATCH = 5, RESUMED }
    "#;

    #[test]
    fn parses_struct_with_typedef_and_collections() {
        let file = parse_thrift(SCAN).unwrap();
        assert_eq!(file.package.as_deref(), Some("org.apache.accumulo.core"));
        let m = file.message("ScanResult").unwrap();
        assert_eq!(m.fields.len(), 4);
        // typedef resolved.
        assert_eq!(m.field("scanId").unwrap().type_name, "i64");
        assert_eq!(m.field("scanId").unwrap().label, FieldLabel::Required);
        // list<T> becomes repeated T.
        assert_eq!(m.field("results").unwrap().label, FieldLabel::Repeated);
        assert_eq!(m.field("results").unwrap().type_name, "string");
        // Default requiredness maps to optional.
        assert_eq!(m.field("partial").unwrap().label, FieldLabel::Optional);
    }

    #[test]
    fn enum_auto_increment_matches_thrift_semantics() {
        let file = parse_thrift(SCAN).unwrap();
        let e = file.enum_decl("ScanType").unwrap();
        let nums: Vec<_> = e
            .values
            .iter()
            .map(|v| (v.name.as_str(), v.number))
            .collect();
        assert_eq!(nums, vec![("SINGLE", 0), ("BATCH", 5), ("RESUMED", 6)]);
    }

    #[test]
    fn map_fields_get_synthetic_type_names() {
        let src = "struct M { 1: map<string, i64> counts }";
        let file = parse_thrift(src).unwrap();
        let f = &file.message("M").unwrap().fields[0];
        assert_eq!(f.type_name, "map<string,i64>");
        assert_eq!(f.label, FieldLabel::Repeated);
    }

    #[test]
    fn services_and_consts_are_skipped() {
        let src = r#"
            const i32 VERSION = 9
            service TabletServer {
                void ping(1: i64 tid)
            }
            struct Keep { 1: i32 x }
        "#;
        let file = parse_thrift(src).unwrap();
        assert!(file.message("Keep").is_some());
        assert_eq!(file.messages.len(), 1);
    }

    #[test]
    fn defaults_are_recorded() {
        let src = "struct M { 1: i32 retries = 3, 2: string mode = \"fast\" }";
        let file = parse_thrift(src).unwrap();
        let m = file.message("M").unwrap();
        assert_eq!(m.field("retries").unwrap().default.as_deref(), Some("3"));
        assert_eq!(m.field("mode").unwrap().default.as_deref(), Some("fast"));
    }

    #[test]
    fn union_and_exception_parse_as_messages() {
        let src = "union U { 1: i32 a } exception E { 1: string msg }";
        let file = parse_thrift(src).unwrap();
        assert!(file.message("U").is_some());
        assert!(file.message("E").is_some());
    }

    #[test]
    fn rejects_malformed_structs() {
        assert!(parse_thrift("struct M { x: i32 }").is_err());
        assert!(parse_thrift("struct M { 1: }").is_err());
        assert!(parse_thrift("struct M { 1: i32 x").is_err());
    }
}
