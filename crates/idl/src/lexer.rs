//! Tokenizer shared by the proto and thrift grammars.

use std::fmt;

/// A source position, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`message`, `required`, `uint64`, names, …).
    /// Dotted identifiers (`foo.Bar`) are a single token.
    Ident(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Quoted string literal (content, without quotes).
    Str(String),
    /// Single punctuation character: `{ } = ; , < > ( ) [ ] :`.
    Punct(char),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Punct(c) => write!(f, "'{c}'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// A lexing or parsing error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes `input`, skipping whitespace, `//` line comments, `#` line
/// comments (thrift), and `/* */` block comments.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span { line, col };
        match c {
            c if c.is_whitespace() => bump!(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(span, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            '"' | '\'' => {
                let quote = bytes[i];
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != quote {
                    if bytes[i] == b'\n' {
                        return Err(ParseError::new(span, "unterminated string literal"));
                    }
                    bump!();
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(span, "unterminated string literal"));
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                bump!(); // Closing quote.
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    span,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        bump!();
                    } else {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    span,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                bump!();
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    bump!();
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("digits are ASCII");
                let value: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(span, format!("invalid integer '{text}'")))?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span,
                });
            }
            '{' | '}' | '=' | ';' | ',' | '<' | '>' | '(' | ')' | '[' | ']' | ':' => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    span,
                });
                bump!();
            }
            other => {
                return Err(ParseError::new(
                    span,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_proto_field() {
        let toks = kinds("required uint64 ageOfLastAppliedOp = 1;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("required".into()),
                TokenKind::Ident("uint64".into()),
                TokenKind::Ident("ageOfLastAppliedOp".into()),
                TokenKind::Punct('='),
                TokenKind::Int(1),
                TokenKind::Punct(';'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("// line\n/* block\nmore */ x # thrift\ny");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_negatives() {
        let toks = kinds("syntax = \"proto2\"; -5");
        assert!(toks.contains(&TokenKind::Str("proto2".into())));
        assert!(toks.contains(&TokenKind::Int(-5)));
    }

    #[test]
    fn dotted_identifiers_are_single_tokens() {
        let toks = kinds("hadoop.hdfs.StorageTypeProto");
        assert_eq!(
            toks[0],
            TokenKind::Ident("hadoop.hdfs.StorageTypeProto".into())
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("ok @").unwrap_err();
        assert_eq!(err.span, Span { line: 1, col: 4 });
        assert!(err.message.contains('@'));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn thrift_punctuation() {
        let toks = kinds("1: list<string> xs,");
        assert_eq!(
            toks,
            vec![
                TokenKind::Int(1),
                TokenKind::Punct(':'),
                TokenKind::Ident("list".into()),
                TokenKind::Punct('<'),
                TokenKind::Ident("string".into()),
                TokenKind::Punct('>'),
                TokenKind::Ident("xs".into()),
                TokenKind::Punct(','),
                TokenKind::Eof,
            ]
        );
    }
}
