//! Lowering parsed IDL to runtime [`dup_wire::Schema`] descriptors.
//!
//! This is how a protocol file becomes an executable codec: the mini systems
//! embed IDL text per version, parse it, lower it, and use the resulting
//! schema with [`dup_wire::proto`] or [`dup_wire::thrift`].

use crate::ast::{FieldLabel, IdlFile};
use crate::lexer::{ParseError, Span};
use dup_wire::{EnumDescriptor, FieldDescriptor, FieldType, Label, MessageDescriptor, Schema};

/// Converts a parsed file into a runtime schema.
///
/// Scalar type names from both grammars are recognized (`uint64`, `int32`,
/// `string`, `bytes`, `bool`, thrift's `i32`/`i64`/`binary`, …); any other
/// type name must resolve to a message or enum declared in the same file.
pub fn lower(file: &IdlFile) -> Result<Schema, ParseError> {
    let mut schema = Schema::new();
    for e in &file.enums {
        let values: Vec<(&str, i32)> = e
            .values
            .iter()
            .map(|v| (v.name.as_str(), v.number))
            .collect();
        schema = schema.with_enum(EnumDescriptor::new(&e.name, &values));
    }
    for m in &file.messages {
        let mut desc = MessageDescriptor::new(&m.name);
        for f in &m.fields {
            let label = match f.label {
                FieldLabel::Required => Label::Required,
                FieldLabel::Optional => Label::Optional,
                FieldLabel::Repeated => Label::Repeated,
            };
            let field_type = resolve_type(&f.type_name, file, f.span)?;
            desc = desc.with(FieldDescriptor::new(f.tag, &f.name, label, field_type));
        }
        schema = schema.with_message(desc);
    }
    Ok(schema)
}

fn resolve_type(name: &str, file: &IdlFile, span: Span) -> Result<FieldType, ParseError> {
    let ft = match name {
        "int32" | "i32" | "sint32" | "sfixed32" => FieldType::Int32,
        "int64" | "i64" | "sint64" | "sfixed64" => FieldType::Int64,
        "uint32" | "fixed32" => FieldType::Uint32,
        "uint64" | "fixed64" => FieldType::Uint64,
        "bool" => FieldType::Bool,
        "string" => FieldType::Str,
        "bytes" | "binary" => FieldType::BytesType,
        // Thrift's small ints and doubles are carried as the nearest variant.
        "byte" | "i8" | "i16" => FieldType::Int32,
        other => {
            // Resolve user types: exact name, or unqualified suffix match for
            // nested types referenced without their prefix.
            let is_enum = file
                .enums
                .iter()
                .any(|e| e.name == other || e.name.rsplit('.').next() == Some(other));
            let is_msg = file
                .messages
                .iter()
                .any(|m| m.name == other || m.name.rsplit('.').next() == Some(other));
            if is_enum {
                let full = file
                    .enums
                    .iter()
                    .find(|e| e.name == other || e.name.rsplit('.').next() == Some(other))
                    .expect("checked above");
                FieldType::Enum(full.name.clone())
            } else if is_msg {
                let full = file
                    .messages
                    .iter()
                    .find(|m| m.name == other || m.name.rsplit('.').next() == Some(other))
                    .expect("checked above");
                FieldType::Message(full.name.clone())
            } else if other.starts_with("map<") {
                // Thrift maps are carried as opaque repeated bytes; the mini
                // systems do not exchange maps, but corpora may declare them.
                FieldType::BytesType
            } else {
                return Err(ParseError::new(span, format!("unresolved type '{other}'")));
            }
        }
    };
    Ok(ft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto_parser::parse_proto;
    use crate::thrift_parser::parse_thrift;
    use dup_wire::{proto, MessageValue, Value};

    #[test]
    fn lowered_proto_schema_encodes() {
        let src = r#"
            message Heartbeat {
                required uint64 term = 1;
                optional string node = 2;
                repeated Peer peers = 3;
                optional Role role = 4;
            }
            message Peer { required string host = 1; }
            enum Role { FOLLOWER = 0; LEADER = 1; }
        "#;
        let schema = lower(&parse_proto(src).unwrap()).unwrap();
        let v = MessageValue::new("Heartbeat")
            .set("term", Value::U64(9))
            .set("role", Value::Enum(1))
            .push(
                "peers",
                Value::Msg(MessageValue::new("Peer").set("host", Value::Str("a".into()))),
            );
        let bytes = proto::encode(&schema, &v).unwrap();
        let back = proto::decode(&schema, "Heartbeat", &bytes).unwrap();
        assert_eq!(back.get_u64("term").unwrap(), 9);
        assert_eq!(back.get_enum("role").unwrap(), 1);
    }

    #[test]
    fn lowered_thrift_schema_encodes() {
        let src = r#"
            struct Entry { 1: required i64 key, 2: binary payload }
        "#;
        let schema = lower(&parse_thrift(src).unwrap()).unwrap();
        let v = MessageValue::new("Entry")
            .set("key", Value::I64(-4))
            .set("payload", Value::Bytes(vec![1, 2, 3]));
        let bytes = dup_wire::thrift::encode(&schema, &v).unwrap();
        let back = dup_wire::thrift::decode(&schema, "Entry", &bytes).unwrap();
        assert_eq!(back.get_i64("key").unwrap(), -4);
        assert_eq!(back.get_bytes("payload").unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn nested_type_references_resolve_by_suffix() {
        let src = r#"
            message Outer {
                optional Inner inner = 1;
                message Inner { required bool ok = 1; }
            }
        "#;
        let schema = lower(&parse_proto(src).unwrap()).unwrap();
        let outer = schema.message("Outer").unwrap();
        assert_eq!(
            outer.field_by_name("inner").unwrap().field_type,
            dup_wire::FieldType::Message("Outer.Inner".into())
        );
    }

    #[test]
    fn unresolved_type_is_an_error() {
        let src = "message M { optional Ghost g = 1; }";
        let err = lower(&parse_proto(src).unwrap()).unwrap_err();
        assert!(err.message.contains("Ghost"));
    }

    #[test]
    fn thrift_small_ints_widen() {
        let src = "struct M { 1: i16 small, 2: byte tiny }";
        let schema = lower(&parse_thrift(src).unwrap()).unwrap();
        let m = schema.message("M").unwrap();
        assert_eq!(
            m.field_by_name("small").unwrap().field_type,
            dup_wire::FieldType::Int32
        );
        assert_eq!(
            m.field_by_name("tiny").unwrap().field_type,
            dup_wire::FieldType::Int32
        );
    }
}
