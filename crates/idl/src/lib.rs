//! # dup-idl — IDL parsers for the DUPChecker schema languages
//!
//! Parsers for the two declarative serialization languages the paper's
//! static checker reads (§6.2): a proto2 subset ([`parse_proto`]) and a
//! Thrift subset ([`parse_thrift`]). Both produce the same [`IdlFile`] AST,
//! which preserves declaration order, `reserved` statements, and source
//! spans — the raw material of the four compatibility rules.
//!
//! [`lower`] converts an AST into a runtime [`dup_wire::Schema`] so the same
//! protocol text that the checker analyzes statically can also be *executed*
//! by the miniature systems.
//!
//! # Examples
//!
//! ```
//! let file = dup_idl::parse_proto(r#"
//!     message ReplicationLoadSink {
//!         required uint64 ageOfLastAppliedOp = 1;
//!     }
//! "#).unwrap();
//! assert_eq!(file.message("ReplicationLoadSink").unwrap().fields.len(), 1);
//! let schema = dup_idl::lower(&file).unwrap();
//! assert!(schema.message("ReplicationLoadSink").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod lexer;
mod lower;
mod proto_parser;
mod thrift_parser;

pub use crate::ast::{
    EnumDecl, EnumValueDecl, FieldDecl, FieldLabel, IdlFile, MessageDecl, SyntaxKind,
};
pub use crate::lexer::{lex, ParseError, Span, Token, TokenKind};
pub use crate::lower::lower;
pub use crate::proto_parser::parse_proto;
pub use crate::thrift_parser::parse_thrift;
