//! Abstract syntax shared by the proto2 and thrift grammars.
//!
//! DUPChecker compares these ASTs across versions, so they preserve details
//! the runtime schema does not need: declaration order of enum members,
//! `reserved` statements, and source spans for error reporting.

use crate::lexer::Span;

/// Which grammar produced the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntaxKind {
    /// Protocol Buffers (proto2 subset).
    Proto2,
    /// Apache Thrift (subset).
    Thrift,
}

/// Presence discipline of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldLabel {
    /// `required` — must appear exactly once.
    Required,
    /// `optional` — may appear at most once (also thrift's default).
    Optional,
    /// `repeated` (proto) / `list<...>` (thrift).
    Repeated,
}

impl FieldLabel {
    /// The proto keyword for the label.
    pub fn keyword(self) -> &'static str {
        match self {
            FieldLabel::Required => "required",
            FieldLabel::Optional => "optional",
            FieldLabel::Repeated => "repeated",
        }
    }
}

/// One declared field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Presence discipline.
    pub label: FieldLabel,
    /// Declared type, as written (`uint64`, `string`, `StorageTypeProto`, …).
    pub type_name: String,
    /// Field name.
    pub name: String,
    /// Wire tag (proto) or field id (thrift).
    pub tag: u32,
    /// `[default = …]` text, if present.
    pub default: Option<String>,
    /// Source position.
    pub span: Span,
}

/// One declared message (proto `message` / thrift `struct`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageDecl {
    /// Fully qualified name (nested messages are `Outer.Inner`).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<FieldDecl>,
    /// Tags reserved with `reserved N, M to K;`.
    pub reserved_tags: Vec<u32>,
    /// Names reserved with `reserved "old";`.
    pub reserved_names: Vec<String>,
    /// Source position.
    pub span: Span,
}

impl MessageDecl {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Looks up a field by tag.
    pub fn field_by_tag(&self, tag: u32) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.tag == tag)
    }
}

/// One enum member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumValueDecl {
    /// Member name.
    pub name: String,
    /// Member number (explicit, or auto-assigned in thrift).
    pub number: i32,
    /// Source position.
    pub span: Span,
}

/// One declared enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDecl {
    /// Fully qualified name.
    pub name: String,
    /// Members in declaration order.
    pub values: Vec<EnumValueDecl>,
    /// Source position.
    pub span: Span,
}

impl EnumDecl {
    /// Looks up a member by name.
    pub fn value(&self, name: &str) -> Option<&EnumValueDecl> {
        self.values.iter().find(|v| v.name == name)
    }

    /// Returns `true` if any member has number 0.
    pub fn has_zero(&self) -> bool {
        self.values.iter().any(|v| v.number == 0)
    }
}

/// One parsed IDL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlFile {
    /// Which grammar this came from.
    pub syntax: SyntaxKind,
    /// `package`/`namespace`, if declared.
    pub package: Option<String>,
    /// Messages (nested ones flattened to `Outer.Inner`).
    pub messages: Vec<MessageDecl>,
    /// Enums (including those nested in messages).
    pub enums: Vec<EnumDecl>,
}

impl IdlFile {
    /// Looks up a message by fully qualified name.
    pub fn message(&self, name: &str) -> Option<&MessageDecl> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Looks up an enum by fully qualified name.
    pub fn enum_decl(&self, name: &str) -> Option<&EnumDecl> {
        self.enums.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_helpers() {
        let file = IdlFile {
            syntax: SyntaxKind::Proto2,
            package: Some("hbase.pb".into()),
            messages: vec![MessageDecl {
                name: "Sink".into(),
                fields: vec![FieldDecl {
                    label: FieldLabel::Required,
                    type_name: "uint64".into(),
                    name: "age".into(),
                    tag: 1,
                    default: None,
                    span: Span::default(),
                }],
                reserved_tags: vec![5],
                reserved_names: vec!["legacy".into()],
                span: Span::default(),
            }],
            enums: vec![EnumDecl {
                name: "Kind".into(),
                values: vec![EnumValueDecl {
                    name: "A".into(),
                    number: 0,
                    span: Span::default(),
                }],
                span: Span::default(),
            }],
        };
        assert!(file.message("Sink").is_some());
        assert!(file.message("Nope").is_none());
        let m = file.message("Sink").unwrap();
        assert_eq!(m.field("age").unwrap().tag, 1);
        assert!(m.field_by_tag(1).is_some());
        assert!(m.field_by_tag(2).is_none());
        let e = file.enum_decl("Kind").unwrap();
        assert!(e.has_zero());
        assert_eq!(e.value("A").unwrap().number, 0);
    }

    #[test]
    fn label_keywords() {
        assert_eq!(FieldLabel::Required.keyword(), "required");
        assert_eq!(FieldLabel::Repeated.keyword(), "repeated");
    }
}
