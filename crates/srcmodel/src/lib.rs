//! # dup-srcmodel — Java-subset source model for the enum-ordinal checker
//!
//! DUPChecker's second checker (paper §6.2) "identifies the enum class whose
//! member's index has been written to a serialized output stream through
//! data flow analysis … For serialized outputs, we currently only consider
//! variables of `DataOutput` type in Java". The paper's subjects are Java
//! codebases; this crate substitutes a parser for a Java-like subset plus
//! the same intra-procedural dataflow:
//!
//! 1. parse classes, enums, fields, and method bodies ([`parse_java`]);
//! 2. type variables from parameter/local/field declarations;
//! 3. taint locals assigned from `<enum-typed expr>.ordinal()`;
//! 4. report every `out.writeXxx(…)` on a `DataOutput`-typed receiver whose
//!    argument is an enum ordinal ([`find_serialized_enum_uses`]).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     public class Reporter {
//!         public enum StorageType { DISK, SSD, ARCHIVE }
//!         public void report(DataOutput out, StorageType t) {
//!             out.writeInt(t.ordinal());
//!         }
//!     }
//! "#;
//! let unit = dup_srcmodel::parse_java(src).unwrap();
//! let uses = dup_srcmodel::find_serialized_enum_uses(&unit);
//! assert_eq!(uses.len(), 1);
//! assert_eq!(uses[0].enum_name, "StorageType");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod flow;
mod parser;

pub use crate::ast::{ClassModel, CompilationUnit, EnumModel, Expr, MethodModel, Param, Stmt};
pub use crate::flow::{find_serialized_enum_uses, SerializedEnumUse};
pub use crate::parser::{parse_java, JavaParseError};
