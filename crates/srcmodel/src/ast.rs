//! The source model: just enough Java structure for the enum-ordinal
//! dataflow.

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompilationUnit {
    /// `package` declaration, if any.
    pub package: Option<String>,
    /// Top-level (and nested) classes.
    pub classes: Vec<ClassModel>,
    /// All enums, including those nested in classes (flattened).
    pub enums: Vec<EnumModel>,
}

impl CompilationUnit {
    /// Looks up an enum by simple name.
    pub fn enum_model(&self, name: &str) -> Option<&EnumModel> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// Looks up a class by simple name.
    pub fn class(&self, name: &str) -> Option<&ClassModel> {
        self.classes.iter().find(|c| c.name == name)
    }
}

/// A class: fields and methods.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassModel {
    /// Simple class name.
    pub name: String,
    /// Field declarations as `(type, name)`.
    pub fields: Vec<(String, String)>,
    /// Methods with bodies.
    pub methods: Vec<MethodModel>,
}

/// An enum with its members in declaration order (ordinals are positional).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnumModel {
    /// Simple enum name.
    pub name: String,
    /// Member names; the ordinal of `members[i]` is `i`.
    pub members: Vec<String>,
}

impl EnumModel {
    /// Ordinal of `member`, if declared.
    pub fn ordinal_of(&self, member: &str) -> Option<usize> {
        self.members.iter().position(|m| m == member)
    }
}

/// A method: parameters and a flattened statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MethodModel {
    /// Method name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Statements, with nested blocks flattened (control flow is irrelevant
    /// to the may-flow analysis the checker runs).
    pub body: Vec<Stmt>,
}

/// One parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Declared type (simple name).
    pub type_name: String,
    /// Parameter name.
    pub name: String,
}

/// A statement in the flattened body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `Type name = expr;`
    Local {
        /// Declared type.
        type_name: String,
        /// Variable name.
        name: String,
        /// Initializer, if present.
        init: Option<Expr>,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// An expression evaluated for effect (typically a call).
    ExprStmt(Expr),
    /// `return expr;`
    Return(Option<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An identifier.
    Ident(String),
    /// A literal (number, string, …) — contents irrelevant to the analysis.
    Literal(String),
    /// `recv.name(args)` or `name(args)` when `recv` is `None`.
    Call {
        /// Receiver expression.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.field`.
    FieldAccess {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Anything the parser recognized but the analysis does not model.
    Opaque,
}

impl Expr {
    /// `true` if this expression is `<something>.ordinal()`.
    pub fn is_ordinal_call(&self) -> bool {
        matches!(self, Expr::Call { recv: Some(_), name, args } if name == "ordinal" && args.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_ordinals_are_positional() {
        let e = EnumModel {
            name: "StorageType".into(),
            members: vec!["DISK".into(), "SSD".into(), "ARCHIVE".into()],
        };
        assert_eq!(e.ordinal_of("DISK"), Some(0));
        assert_eq!(e.ordinal_of("ARCHIVE"), Some(2));
        assert_eq!(e.ordinal_of("NVDIMM"), None);
    }

    #[test]
    fn ordinal_call_detection() {
        let e = Expr::Call {
            recv: Some(Box::new(Expr::Ident("t".into()))),
            name: "ordinal".into(),
            args: vec![],
        };
        assert!(e.is_ordinal_call());
        let not = Expr::Call {
            recv: None,
            name: "ordinal".into(),
            args: vec![],
        };
        assert!(!not.is_ordinal_call());
    }
}
