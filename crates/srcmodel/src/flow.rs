//! The enum-ordinal serialization dataflow (paper §6.2, type-2 checker).
//!
//! For each method: type the variables (params, locals, fields), taint
//! values produced by `<enum>.ordinal()`, and flag every `writeXxx` call on
//! a `DataOutput`-typed receiver whose argument carries the taint. The
//! analysis is intra-procedural and flow-insensitive — matching the paper's
//! tool, including its stated limitation to `DataOutput` sinks.

use crate::ast::{ClassModel, CompilationUnit, Expr, MethodModel, Stmt};
use std::collections::BTreeMap;

/// Types treated as serialized output sinks.
const SINK_TYPES: &[&str] = &["DataOutput", "DataOutputStream", "ObjectOutputStream"];

/// One place an enum's ordinal reaches a serialized output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializedEnumUse {
    /// The enum whose ordinal is serialized.
    pub enum_name: String,
    /// The class containing the write.
    pub class_name: String,
    /// The method containing the write.
    pub method_name: String,
}

/// Finds every enum-ordinal-to-`DataOutput` flow in the unit.
pub fn find_serialized_enum_uses(unit: &CompilationUnit) -> Vec<SerializedEnumUse> {
    let enum_names: Vec<&str> = unit.enums.iter().map(|e| e.name.as_str()).collect();
    let mut out = Vec::new();
    for class in &unit.classes {
        for method in &class.methods {
            analyze_method(class, method, &enum_names, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.enum_name, &a.class_name).cmp(&(&b.enum_name, &b.class_name)));
    out.dedup();
    out
}

fn analyze_method(
    class: &ClassModel,
    method: &MethodModel,
    enum_names: &[&str],
    out: &mut Vec<SerializedEnumUse>,
) {
    // Variable typing environment: fields, params, locals.
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for (t, n) in &class.fields {
        types.insert(n.as_str(), t.as_str());
    }
    for p in &method.params {
        types.insert(p.name.as_str(), p.type_name.as_str());
    }
    for stmt in &method.body {
        if let Stmt::Local {
            type_name, name, ..
        } = stmt
        {
            types.insert(name.as_str(), type_name.as_str());
        }
    }

    // Taint: variable name -> enum whose ordinal it holds.
    let mut taint: BTreeMap<&str, String> = BTreeMap::new();
    // Two passes make the flow-insensitive analysis reach fixpoint for the
    // single level of copying the subset allows.
    for _ in 0..2 {
        for stmt in &method.body {
            match stmt {
                Stmt::Local {
                    name,
                    init: Some(init),
                    ..
                } => {
                    if let Some(e) = ordinal_source(init, &types, enum_names, &taint) {
                        taint.insert(name.as_str(), e);
                    }
                }
                Stmt::Assign { name, value } => {
                    if let Some(e) = ordinal_source(value, &types, enum_names, &taint) {
                        taint.insert(name.as_str(), e);
                    }
                }
                _ => {}
            }
        }
    }

    // Sinks: `sink.writeXxx(arg)` where type(sink) ∈ SINK_TYPES.
    for stmt in &method.body {
        let exprs: Vec<&Expr> = match stmt {
            Stmt::ExprStmt(e) => vec![e],
            Stmt::Local { init: Some(e), .. } => vec![e],
            Stmt::Assign { value, .. } => vec![value],
            Stmt::Return(Some(e)) => vec![e],
            _ => vec![],
        };
        for expr in exprs {
            find_sinks(expr, &types, enum_names, &taint, class, method, out);
        }
    }
}

/// If `expr` evaluates to an enum ordinal, returns the enum name.
fn ordinal_source(
    expr: &Expr,
    types: &BTreeMap<&str, &str>,
    enum_names: &[&str],
    taint: &BTreeMap<&str, String>,
) -> Option<String> {
    match expr {
        Expr::Call {
            recv: Some(recv),
            name,
            args,
        } if name == "ordinal" && args.is_empty() => {
            let enum_ty = expr_enum_type(recv, types, enum_names)?;
            Some(enum_ty)
        }
        Expr::Ident(name) => taint.get(name.as_str()).cloned(),
        _ => None,
    }
}

/// The enum type of `expr`, if it is an enum-typed variable or member access
/// (`StorageType.DISK`).
fn expr_enum_type(
    expr: &Expr,
    types: &BTreeMap<&str, &str>,
    enum_names: &[&str],
) -> Option<String> {
    match expr {
        Expr::Ident(name) => {
            let t = types.get(name.as_str())?;
            enum_names.contains(t).then(|| (*t).to_string())
        }
        Expr::FieldAccess { recv, .. } => {
            // `StorageType.DISK`: receiver is the enum type itself.
            if let Expr::Ident(type_name) = recv.as_ref() {
                if enum_names.contains(&type_name.as_str()) {
                    return Some(type_name.clone());
                }
            }
            None
        }
        _ => None,
    }
}

fn find_sinks(
    expr: &Expr,
    types: &BTreeMap<&str, &str>,
    enum_names: &[&str],
    taint: &BTreeMap<&str, String>,
    class: &ClassModel,
    method: &MethodModel,
    out: &mut Vec<SerializedEnumUse>,
) {
    if let Expr::Call {
        recv: Some(recv),
        name,
        args,
    } = expr
    {
        let receiver_is_sink = matches!(
            recv.as_ref(),
            Expr::Ident(v) if types.get(v.as_str()).is_some_and(|t| SINK_TYPES.contains(t))
        );
        if receiver_is_sink && name.starts_with("write") {
            for arg in args {
                if let Some(enum_name) = ordinal_source(arg, types, enum_names, taint) {
                    out.push(SerializedEnumUse {
                        enum_name,
                        class_name: class.name.clone(),
                        method_name: method.name.clone(),
                    });
                }
            }
        }
        // Recurse into sub-expressions.
        find_sinks(recv, types, enum_names, taint, class, method, out);
        for arg in args {
            find_sinks(arg, types, enum_names, taint, class, method, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_java;

    #[test]
    fn direct_ordinal_write_is_found() {
        let unit = parse_java(
            r#"
            class Reporter {
                enum StorageType { DISK, SSD }
                void report(DataOutput out, StorageType t) {
                    out.writeInt(t.ordinal());
                }
            }
        "#,
        )
        .unwrap();
        let uses = find_serialized_enum_uses(&unit);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].enum_name, "StorageType");
        assert_eq!(uses[0].class_name, "Reporter");
        assert_eq!(uses[0].method_name, "report");
    }

    #[test]
    fn taint_flows_through_locals_and_assignments() {
        let unit = parse_java(
            r#"
            class C {
                enum Mode { A, B }
                void m(DataOutputStream s, Mode mode) {
                    int idx = mode.ordinal();
                    int copy = idx;
                    s.writeShort(copy);
                }
            }
        "#,
        )
        .unwrap();
        let uses = find_serialized_enum_uses(&unit);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].enum_name, "Mode");
    }

    #[test]
    fn writes_of_untainted_values_are_not_flagged() {
        let unit = parse_java(
            r#"
            class C {
                enum Mode { A, B }
                void m(DataOutput out, long id) {
                    out.writeLong(id);
                    out.writeInt(42);
                }
            }
        "#,
        )
        .unwrap();
        assert!(find_serialized_enum_uses(&unit).is_empty());
    }

    #[test]
    fn non_sink_receivers_are_ignored() {
        // The paper's tool only considers DataOutput-typed outputs; a write
        // to anything else is a (documented) false negative.
        let unit = parse_java(
            r#"
            class C {
                enum Mode { A, B }
                void m(ByteBuffer buf, Mode mode) {
                    buf.writeInt(mode.ordinal());
                }
            }
        "#,
        )
        .unwrap();
        assert!(find_serialized_enum_uses(&unit).is_empty());
    }

    #[test]
    fn field_typed_sinks_work() {
        let unit = parse_java(
            r#"
            class C {
                enum Kind { X }
                private DataOutput cached;
                void m(Kind k) {
                    cached.writeInt(k.ordinal());
                }
            }
        "#,
        )
        .unwrap();
        assert_eq!(find_serialized_enum_uses(&unit).len(), 1);
    }

    #[test]
    fn enum_member_access_ordinal() {
        let unit = parse_java(
            r#"
            class C {
                enum Kind { X, Y }
                void m(DataOutput out) {
                    out.writeInt(Kind.Y.ordinal());
                }
            }
        "#,
        )
        .unwrap();
        let uses = find_serialized_enum_uses(&unit);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].enum_name, "Kind");
    }

    #[test]
    fn duplicate_flows_dedupe() {
        let unit = parse_java(
            r#"
            class C {
                enum Kind { X }
                void m(DataOutput out, Kind k) {
                    out.writeInt(k.ordinal());
                    out.writeInt(k.ordinal());
                }
            }
        "#,
        )
        .unwrap();
        assert_eq!(find_serialized_enum_uses(&unit).len(), 1);
    }
}
