//! A tolerant recursive-descent parser for the Java subset.
//!
//! The parser understands packages, imports, classes (with nesting), enums,
//! fields, and method bodies consisting of local declarations, assignments,
//! calls, `return`, and `if`/`for`/`while` blocks (whose bodies are
//! flattened — the dataflow is flow-insensitive). Statements it cannot model
//! are skipped to the next `;`, never failing the file: real static
//! checkers must survive code they do not fully understand.

use crate::ast::{ClassModel, CompilationUnit, EnumModel, Expr, MethodModel, Param, Stmt};
use std::fmt;

/// A parse error (only raised for structurally broken input, e.g.
/// unbalanced braces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JavaParseError {
    /// Description.
    pub message: String,
}

impl fmt::Display for JavaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "java parse error: {}", self.message)
    }
}

impl std::error::Error for JavaParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Literal(String),
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>, JavaParseError> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(JavaParseError {
                        message: "unterminated comment".into(),
                    });
                }
                i += 2;
            }
            '"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(JavaParseError {
                        message: "unterminated string".into(),
                    });
                }
                i += 1;
                toks.push(Tok::Literal(
                    String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                ));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(
                    String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                ));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'.')
                {
                    i += 1;
                }
                toks.push(Tok::Literal(
                    String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                ));
            }
            other => {
                toks.push(Tok::Punct(other));
                i += 1;
            }
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

/// Parses Java-subset source text into a [`CompilationUnit`].
pub fn parse_java(input: &str) -> Result<CompilationUnit, JavaParseError> {
    let toks = lex(input)?;
    let mut p = P { toks, pos: 0 };
    p.unit()
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

const MODIFIERS: &[&str] = &[
    "public",
    "private",
    "protected",
    "static",
    "final",
    "abstract",
    "synchronized",
    "native",
];

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if *self.peek() == Tok::Punct(c) {
            self.next();
            true
        } else {
            false
        }
    }

    fn skip_modifiers(&mut self) {
        while let Tok::Ident(w) = self.peek() {
            if MODIFIERS.contains(&w.as_str()) {
                self.next();
            } else {
                break;
            }
        }
        // Annotations.
        while *self.peek() == Tok::Punct('@') {
            self.next();
            self.next(); // Annotation name.
            if self.eat_punct('(') {
                self.skip_balanced('(', ')');
            }
        }
    }

    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 1;
        loop {
            match self.next() {
                Tok::Punct(c) if c == open => depth += 1,
                Tok::Punct(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                Tok::Eof => return,
                _ => {}
            }
        }
    }

    fn skip_to_semi(&mut self) {
        loop {
            match self.next() {
                Tok::Punct(';') | Tok::Eof => return,
                Tok::Punct('{') => {
                    self.skip_balanced('{', '}');
                    return;
                }
                _ => {}
            }
        }
    }

    fn unit(&mut self) -> Result<CompilationUnit, JavaParseError> {
        let mut unit = CompilationUnit::default();
        loop {
            self.skip_modifiers();
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(w) if w == "package" => {
                    self.next();
                    let mut name = String::new();
                    loop {
                        match self.next() {
                            Tok::Ident(part) => name.push_str(&part),
                            Tok::Punct('.') => name.push('.'),
                            _ => break,
                        }
                    }
                    unit.package = Some(name);
                }
                Tok::Ident(w) if w == "import" => {
                    self.next();
                    self.skip_to_semi();
                }
                Tok::Ident(w) if w == "class" || w == "interface" => {
                    self.next();
                    self.class_decl(&mut unit)?;
                }
                Tok::Ident(w) if w == "enum" => {
                    self.next();
                    let e = self.enum_decl()?;
                    unit.enums.push(e);
                }
                _ => {
                    self.next(); // Tolerate stray tokens.
                }
            }
        }
        Ok(unit)
    }

    fn enum_decl(&mut self) -> Result<EnumModel, JavaParseError> {
        let name = match self.next() {
            Tok::Ident(n) => n,
            _ => {
                return Err(JavaParseError {
                    message: "expected enum name".into(),
                })
            }
        };
        if !self.eat_punct('{') {
            return Err(JavaParseError {
                message: format!("expected '{{' after enum {name}"),
            });
        }
        let mut members = Vec::new();
        // Members: `NAME`, `NAME(args)`, separated by commas, optionally
        // followed by `;` and a body (which we skip).
        loop {
            match self.next() {
                Tok::Ident(member) => {
                    members.push(member);
                    if self.eat_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                    match self.next() {
                        Tok::Punct(',') => continue,
                        Tok::Punct('}') => break,
                        Tok::Punct(';') => {
                            // Enum body (methods, fields): skip to close.
                            self.skip_balanced_from_open_state();
                            break;
                        }
                        _ => break,
                    }
                }
                Tok::Punct('}') => break,
                Tok::Eof => {
                    return Err(JavaParseError {
                        message: format!("unterminated enum {name}"),
                    })
                }
                _ => {}
            }
        }
        Ok(EnumModel { name, members })
    }

    /// Skips to the `}` matching an already-open `{`.
    fn skip_balanced_from_open_state(&mut self) {
        let mut depth = 1;
        loop {
            match self.next() {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                Tok::Eof => return,
                _ => {}
            }
        }
    }

    fn class_decl(&mut self, unit: &mut CompilationUnit) -> Result<(), JavaParseError> {
        let name = match self.next() {
            Tok::Ident(n) => n,
            _ => {
                return Err(JavaParseError {
                    message: "expected class name".into(),
                })
            }
        };
        // `extends X implements Y, Z` — skip until '{'.
        while *self.peek() != Tok::Punct('{') {
            if *self.peek() == Tok::Eof {
                return Err(JavaParseError {
                    message: format!("class {name} has no body"),
                });
            }
            self.next();
        }
        self.next(); // '{'
        let mut class = ClassModel {
            name,
            ..ClassModel::default()
        };
        loop {
            self.skip_modifiers();
            match self.peek().clone() {
                Tok::Punct('}') => {
                    self.next();
                    break;
                }
                Tok::Eof => {
                    return Err(JavaParseError {
                        message: format!("unterminated class {}", class.name),
                    })
                }
                Tok::Ident(w) if w == "class" || w == "interface" => {
                    self.next();
                    self.class_decl(unit)?;
                }
                Tok::Ident(w) if w == "enum" => {
                    self.next();
                    let e = self.enum_decl()?;
                    unit.enums.push(e);
                }
                Tok::Ident(_) => {
                    self.member(&mut class)?;
                }
                _ => {
                    self.next();
                }
            }
        }
        unit.classes.push(class);
        Ok(())
    }

    /// Parses one field or method: `Type name;`, `Type name = expr;`, or
    /// `Type name(params) { body }`.
    fn member(&mut self, class: &mut ClassModel) -> Result<(), JavaParseError> {
        let type_name = match self.next() {
            Tok::Ident(t) => t,
            _ => return Ok(()),
        };
        // Generic types: `Map<String, Long>` — skip the type arguments.
        if self.eat_punct('<') {
            self.skip_balanced('<', '>');
        }
        // Array types.
        while self.eat_punct('[') {
            self.eat_punct(']');
        }
        let name = match self.next() {
            Tok::Ident(n) => n,
            Tok::Punct('(') => {
                // Constructor: `ClassName(params) { ... }`.
                self.skip_balanced('(', ')');
                if self.eat_punct('{') {
                    self.skip_balanced_from_open_state();
                }
                return Ok(());
            }
            _ => {
                self.skip_to_semi();
                return Ok(());
            }
        };
        match self.next() {
            Tok::Punct(';') => {
                class.fields.push((type_name, name));
            }
            Tok::Punct('=') => {
                class.fields.push((type_name, name));
                self.skip_to_semi();
            }
            Tok::Punct('(') => {
                let params = self.params()?;
                // `throws X, Y`.
                while *self.peek() != Tok::Punct('{') && *self.peek() != Tok::Punct(';') {
                    if *self.peek() == Tok::Eof {
                        return Ok(());
                    }
                    self.next();
                }
                let mut body = Vec::new();
                if self.eat_punct('{') {
                    self.block(&mut body);
                } else {
                    self.next(); // Abstract method's ';'.
                }
                class.methods.push(MethodModel { name, params, body });
            }
            _ => self.skip_to_semi(),
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<Param>, JavaParseError> {
        let mut params = Vec::new();
        if self.eat_punct(')') {
            return Ok(params);
        }
        loop {
            self.skip_modifiers();
            let type_name = match self.next() {
                Tok::Ident(t) => t,
                Tok::Punct(')') => break,
                _ => continue,
            };
            if self.eat_punct('<') {
                self.skip_balanced('<', '>');
            }
            while self.eat_punct('[') {
                self.eat_punct(']');
            }
            let name = match self.next() {
                Tok::Ident(n) => n,
                _ => continue,
            };
            params.push(Param { type_name, name });
            match self.next() {
                Tok::Punct(',') => continue,
                Tok::Punct(')') => break,
                Tok::Eof => break,
                _ => continue,
            }
        }
        Ok(params)
    }

    /// Parses statements until the matching `}` — nested blocks flatten.
    fn block(&mut self, out: &mut Vec<Stmt>) {
        loop {
            match self.peek().clone() {
                Tok::Punct('}') => {
                    self.next();
                    return;
                }
                Tok::Eof => return,
                Tok::Punct('{') => {
                    self.next();
                    self.block(out);
                }
                Tok::Ident(w) if w == "if" || w == "while" || w == "for" || w == "switch" => {
                    self.next();
                    if self.eat_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                    // Bodies parse through the main loop (brace or single stmt).
                }
                Tok::Ident(w) if w == "else" || w == "try" || w == "finally" || w == "do" => {
                    self.next();
                }
                Tok::Ident(w) if w == "catch" => {
                    self.next();
                    if self.eat_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Tok::Ident(w) if w == "return" => {
                    self.next();
                    if *self.peek() == Tok::Punct(';') {
                        self.next();
                        out.push(Stmt::Return(None));
                    } else {
                        let e = self.expr();
                        self.end_stmt();
                        out.push(Stmt::Return(Some(e)));
                    }
                }
                Tok::Ident(w) if w == "throw" || w == "break" || w == "continue" => {
                    self.next();
                    self.skip_to_semi();
                }
                Tok::Ident(first) => {
                    self.statement_starting_with_ident(first, out);
                }
                _ => {
                    self.next();
                }
            }
        }
    }

    fn statement_starting_with_ident(&mut self, first: String, out: &mut Vec<Stmt>) {
        // Lookahead: `Type name = …` / `Type name;` vs `x = …` vs `x.y(…)`.
        let start = self.pos;
        self.next(); // Consume `first`.
                     // Possible generic type.
        if *self.peek() == Tok::Punct('<') {
            self.next();
            self.skip_balanced('<', '>');
        }
        match self.peek().clone() {
            Tok::Ident(second) => {
                // Local declaration `Type name …`.
                self.next();
                match self.next() {
                    Tok::Punct('=') => {
                        let init = self.expr();
                        self.end_stmt();
                        out.push(Stmt::Local {
                            type_name: first,
                            name: second,
                            init: Some(init),
                        });
                    }
                    Tok::Punct(';') => {
                        out.push(Stmt::Local {
                            type_name: first,
                            name: second,
                            init: None,
                        });
                    }
                    _ => self.skip_to_semi(),
                }
            }
            Tok::Punct('=') => {
                self.next();
                let value = self.expr();
                self.end_stmt();
                out.push(Stmt::Assign { name: first, value });
            }
            Tok::Punct('.') | Tok::Punct('(') => {
                // Rewind and parse as an expression statement.
                self.pos = start;
                let e = self.expr();
                self.end_stmt();
                out.push(Stmt::ExprStmt(e));
            }
            _ => {
                self.skip_to_semi();
            }
        }
    }

    fn end_stmt(&mut self) {
        while !matches!(self.peek(), Tok::Punct(';') | Tok::Eof | Tok::Punct('}')) {
            self.next();
        }
        self.eat_punct(';');
    }

    /// Parses a primary expression with call/field chains; anything fancier
    /// degrades to [`Expr::Opaque`].
    fn expr(&mut self) -> Expr {
        let mut base = match self.next() {
            Tok::Ident(w) if w == "new" => {
                // `new Foo(args)` → call with no receiver.
                match self.next() {
                    Tok::Ident(class) => {
                        if self.eat_punct('(') {
                            let args = self.call_args();
                            Expr::Call {
                                recv: None,
                                name: class,
                                args,
                            }
                        } else {
                            Expr::Opaque
                        }
                    }
                    _ => Expr::Opaque,
                }
            }
            Tok::Ident(name) => {
                if self.eat_punct('(') {
                    let args = self.call_args();
                    Expr::Call {
                        recv: None,
                        name,
                        args,
                    }
                } else {
                    Expr::Ident(name)
                }
            }
            Tok::Literal(text) => Expr::Literal(text),
            Tok::Punct('(') => {
                // Parenthesized or cast: parse inner, continue.
                let inner = self.expr();
                self.eat_punct(')');
                inner
            }
            _ => Expr::Opaque,
        };
        // Chains: `.name` or `.name(args)`.
        while self.eat_punct('.') {
            match self.next() {
                Tok::Ident(name) => {
                    if self.eat_punct('(') {
                        let args = self.call_args();
                        base = Expr::Call {
                            recv: Some(Box::new(base)),
                            name,
                            args,
                        };
                    } else {
                        base = Expr::FieldAccess {
                            recv: Box::new(base),
                            field: name,
                        };
                    }
                }
                _ => return Expr::Opaque,
            }
        }
        // Binary operators and the rest degrade to opaque (taint does not
        // survive arithmetic in the checker, matching the paper's tool).
        if matches!(
            self.peek(),
            Tok::Punct('+') | Tok::Punct('-') | Tok::Punct('*') | Tok::Punct('?')
        ) {
            while !matches!(
                self.peek(),
                Tok::Punct(';') | Tok::Punct(',') | Tok::Punct(')') | Tok::Eof | Tok::Punct('}')
            ) {
                self.next();
            }
            return Expr::Opaque;
        }
        base
    }

    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if self.eat_punct(')') {
            return args;
        }
        loop {
            args.push(self.expr());
            match self.next() {
                Tok::Punct(',') => continue,
                Tok::Punct(')') => break,
                Tok::Eof => break,
                _ => {
                    // Unmodelled tokens inside an argument: skip until the
                    // argument list closes.
                    let mut depth = 1;
                    loop {
                        match self.next() {
                            Tok::Punct('(') => depth += 1,
                            Tok::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    return args;
                                }
                            }
                            Tok::Eof => return args,
                            _ => {}
                        }
                    }
                }
            }
        }
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        package org.apache.hadoop.hdfs;
        import java.io.DataOutput;

        public class BlockReporter {
            public enum StorageType { DISK, SSD, ARCHIVE }

            private DataOutput cached;
            private long blockId = 0;

            public void writeReport(DataOutput out, StorageType type) {
                out.writeInt(type.ordinal());
                out.writeLong(blockId);
            }

            public void indirect(StorageType t) {
                int idx = t.ordinal();
                DataOutput stream = openStream();
                stream.writeInt(idx);
            }
        }
    "#;

    #[test]
    fn parses_package_class_enum_fields_methods() {
        let unit = parse_java(SRC).unwrap();
        assert_eq!(unit.package.as_deref(), Some("org.apache.hadoop.hdfs"));
        let class = unit.class("BlockReporter").unwrap();
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.methods.len(), 2);
        let e = unit.enum_model("StorageType").unwrap();
        assert_eq!(e.members, vec!["DISK", "SSD", "ARCHIVE"]);
    }

    #[test]
    fn method_bodies_capture_calls_and_locals() {
        let unit = parse_java(SRC).unwrap();
        let m = &unit.class("BlockReporter").unwrap().methods[0];
        assert_eq!(m.name, "writeReport");
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].type_name, "DataOutput");
        assert_eq!(m.body.len(), 2);
        match &m.body[0] {
            Stmt::ExprStmt(Expr::Call {
                recv: Some(recv),
                name,
                args,
            }) => {
                assert_eq!(**recv, Expr::Ident("out".into()));
                assert_eq!(name, "writeInt");
                assert!(args[0].is_ordinal_call());
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn locals_with_initializers() {
        let unit = parse_java(SRC).unwrap();
        let m = &unit.class("BlockReporter").unwrap().methods[1];
        match &m.body[0] {
            Stmt::Local {
                type_name,
                name,
                init: Some(init),
            } => {
                assert_eq!(type_name, "int");
                assert_eq!(name, "idx");
                assert!(init.is_ordinal_call());
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn tolerates_control_flow_and_unknown_statements() {
        let src = r#"
            class C {
                void m(DataOutput out, Mode mode) {
                    if (mode != null) {
                        out.writeInt(mode.ordinal());
                    }
                    for (int i = 0; i < 10; i = i + 1) {
                        doStuff(i);
                    }
                }
                enum Mode { A, B }
            }
        "#;
        let unit = parse_java(src).unwrap();
        let m = &unit.class("C").unwrap().methods[0];
        // The writeInt call inside the if-block is captured (flattened).
        assert!(m.body.iter().any(|s| matches!(
            s,
            Stmt::ExprStmt(Expr::Call { name, .. }) if name == "writeInt"
        )));
    }

    #[test]
    fn enum_with_constructor_args_and_body() {
        let src = r#"
            enum Level {
                LOW(1), HIGH(2);
                private final int v;
                Level(int v) { this.v = v; }
            }
        "#;
        let unit = parse_java(src).unwrap();
        assert_eq!(
            unit.enum_model("Level").unwrap().members,
            vec!["LOW", "HIGH"]
        );
    }

    #[test]
    fn unterminated_input_errors() {
        assert!(parse_java("class C {").is_err());
        assert!(parse_java("enum E { A, ").is_err());
        assert!(parse_java("/* no end").is_err());
    }

    #[test]
    fn assignments_are_modelled() {
        let src = r#"
            class C {
                void m(Kind k) {
                    int x = 0;
                    x = k.ordinal();
                }
                enum Kind { P, Q }
            }
        "#;
        let unit = parse_java(src).unwrap();
        let m = &unit.class("C").unwrap().methods[0];
        assert!(m.body.iter().any(
            |s| matches!(s, Stmt::Assign { name, value } if name == "x" && value.is_ordinal_call())
        ));
    }
}
