//! Replay the HDFS-11856 write-pipeline failure (paper Figure 1) step by
//! step on the simulator, narrating the timeline.
//!
//! Run with `cargo run --example pipeline_failure`.

use ds_upgrade::dfs::{DataNode, NameNode};
use ds_upgrade::prelude::*;

fn cmd(sim: &mut Sim, node: u32, text: &str) -> String {
    sim.rpc(
        node,
        text.as_bytes().to_vec().into(),
        SimDuration::from_secs(5),
    )
    .map(|b| String::from_utf8_lossy(&b).into_owned())
    .unwrap_or_else(|| "(timeout)".to_string())
}

fn main() {
    let version: VersionId = "2.8.0".parse().expect("version parses");
    let mut sim = Sim::new(7);
    let n = 3;
    for i in 0..n {
        let setup = NodeSetup::new(i, n);
        let proc: Box<dyn Process> = if i == 0 {
            Box::new(NameNode::new(version, setup))
        } else {
            Box::new(DataNode::new(version, setup))
        };
        let id = sim.add_node(&format!("dfs-host-{i}"), "2.8.0", proc);
        sim.start_node(id).expect("node starts");
    }
    sim.run_for(SimDuration::from_secs(1));

    println!(
        "t={} | write pipeline formed: client -> dn-1 -> dn-2",
        sim.now()
    );
    println!(
        "       WRITE /f1 -> {}",
        cmd(&mut sim, 0, "WRITE /f1 block1")
    );

    println!(
        "t={} | dn-2 starts its upgrade: sends the restart notice, goes down",
        sim.now()
    );
    sim.stop_node(2).expect("stops");

    sim.run_for(SimDuration::from_millis(3500));
    println!(
        "t={} | the upgrade takes longer than the client's tolerance window (3 s scaled \
         from the paper's 30 s)",
        sim.now()
    );
    println!(
        "       WRITE /f2 -> {}",
        cmd(&mut sim, 0, "WRITE /f2 block2")
    );

    sim.install(
        2,
        "2.8.0",
        Box::new(DataNode::new(version, NodeSetup::new(2, n))),
    )
    .expect("reinstalls");
    sim.start_node(2).expect("starts");
    sim.run_for(SimDuration::from_secs(8));
    println!(
        "t={} | dn-2 finished its upgrade and heartbeats again…",
        sim.now()
    );
    println!("       CHECK /f2 -> {}", cmd(&mut sim, 0, "CHECK /f2"));
    println!("       (dn-2 was marked bad PERMANENTLY; /f2 stays under-replicated)");

    println!("\nNameNode log evidence:");
    for r in sim.logs().matching("bad permanently") {
        println!("  {r}");
    }
}
