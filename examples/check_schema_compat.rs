//! Run DUPChecker on schema text: first the paper's Figure 2 diff, then a
//! whole generated corpus, then the enum-ordinal checker on Java-subset
//! source.
//!
//! Run with `cargo run --example check_schema_compat`.

use ds_upgrade::prelude::*;

fn main() {
    // 1. The Figure-2 diff.
    println!("== HBASE-25238 (paper Figure 2) ==");
    let old =
        parse_proto("message ReplicationLoadSink { required uint64 ageOfLastAppliedOp = 1; }")
            .expect("parses");
    let new = parse_proto(
        "message ReplicationLoadSink { required uint64 ageOfLastAppliedOp = 1; \
         required uint64 timestampStarted = 3; }",
    )
    .expect("parses");
    for v in compare_files(&old, &new) {
        println!("  {v}");
    }

    // 2. A Thrift pair (Accumulo/Impala use Thrift).
    println!("\n== Thrift example ==");
    let old =
        parse_thrift("struct Scan { 1: required i64 id, 2: optional i32 batch }").expect("parses");
    let new =
        parse_thrift("struct Scan { 5: required i64 id, 2: required i32 batch }").expect("parses");
    for v in compare_files(&old, &new) {
        println!("  {v}  ({:?})", v.severity());
    }

    // 3. A full corpus sweep (the Table-6 machinery, one system).
    println!("\n== Generated HDFS-sized corpus ==");
    let spec = table6_specs()
        .into_iter()
        .find(|s| s.system == "HDFS")
        .expect("spec exists");
    let report = check_corpus(&generate(&spec)).expect("corpus parses");
    println!(
        "  {}: {} errors, {} warnings across {} version pair(s)",
        report.system,
        report.errors(),
        report.warnings(),
        report.pairs.len()
    );
    let sample: Vec<_> = report.pairs[0]
        .violations
        .iter()
        .filter(|v| v.severity() == Severity::Error)
        .take(3)
        .collect();
    for v in sample {
        println!("  e.g. {v}");
    }

    // 4. The type-2 enum checker.
    println!("\n== Enum-ordinal checker (HDFS-15624 shape) ==");
    let old_src = vec![(
        "StorageReport.java".to_string(),
        "public class R { public enum StorageType { DISK, SSD, ARCHIVE } \
         public void w(DataOutput out, StorageType t) { out.writeInt(t.ordinal()); } }"
            .to_string(),
    )];
    let new_src = vec![(
        "StorageReport.java".to_string(),
        "public class R { public enum StorageType { DISK, SSD, NVDIMM, ARCHIVE } \
         public void w(DataOutput out, StorageType t) { out.writeInt(t.ordinal()); } }"
            .to_string(),
    )];
    for finding in check_sources(&old_src, &new_src).expect("parses") {
        println!("  {finding}");
    }
}
