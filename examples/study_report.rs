//! Print the full upgrade-failure study: Tables 1–4 and Findings 1–13,
//! with the paper's claims alongside the measured values.
//!
//! Run with `cargo run --example study_report`.

use ds_upgrade::prelude::*;

fn main() {
    let ds = dataset();
    print!("{}", render_table1(&ds));
    println!();
    print!("{}", render_table2(&ds));
    println!();
    print!("{}", render_table3(&ds));
    println!();
    print!("{}", render_table4(&ds));
    println!();
    print!("{}", render_findings(&ds));

    // A taste of the per-record data.
    println!("\nSample named records:");
    for r in ds.iter().filter(|r| !r.reconstructed).take(6) {
        println!(
            "  {:<16} {:<10} symptom={:?} nodes={} deterministic={}",
            r.id,
            r.system.to_string(),
            r.symptom,
            r.nodes_required,
            r.deterministic
        );
    }
}
