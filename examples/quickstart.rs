//! Quickstart: test one upgrade of the mini Cassandra-like store with
//! DUPTester and print what the oracle saw.
//!
//! Run with `cargo run --example quickstart`.

use ds_upgrade::kvstore::KvStoreSystem;
use ds_upgrade::prelude::*;

fn main() {
    // CASSANDRA-4195's version pair: 1.1 -> 1.2, rolling.
    let case = TestCase {
        from: "1.1.0".parse::<VersionId>().expect("version parses"),
        to: "1.2.0".parse().expect("version parses"),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    println!(
        "DUPTester: cassandra-mini {} -> {} [{}] with the {} workload…\n",
        case.from, case.to, case.scenario, case.workload
    );
    match case.run(&KvStoreSystem) {
        CaseOutcome::Pass => println!("upgrade went through cleanly"),
        CaseOutcome::InvalidWorkload(reason) => println!("workload invalid: {reason}"),
        CaseOutcome::Fail(observations) => {
            println!("UPGRADE FAILURE — evidence:");
            for o in &observations {
                println!("  - {o}   [{}]", o.classify());
            }
        }
    }

    // The same pair under a full-stop upgrade is clean: the gossip
    // incompatibility needs both versions live at once.
    let full_stop = TestCase {
        scenario: Scenario::FullStop,
        ..case.clone()
    };
    println!("\nSame pair, full-stop scenario…");
    match full_stop.run(&KvStoreSystem) {
        CaseOutcome::Pass => println!("upgrade went through cleanly (as the paper predicts)"),
        other => println!("unexpected: {other:?}"),
    }

    // Running many cases? Hold a `CaseRunner` and reuse its warm simulator:
    // `run_in` resets (never re-allocates) between cases and also returns
    // the determinism digest alongside the outcome. Campaigns do exactly
    // this internally, one runner per worker thread.
    let mut runner = CaseRunner::new(&KvStoreSystem);
    let digests: Vec<_> = (1..=3)
        .map(|seed| {
            TestCase {
                seed,
                ..case.clone()
            }
            .run_in(&mut runner)
            .digest
        })
        .collect();
    println!("\nThree seeds on one warm runner:");
    for (seed, digest) in (1..=3).zip(&digests) {
        println!(
            "  seed {seed}: {} events, {} messages",
            digest.events_processed, digest.messages_delivered
        );
    }
}
