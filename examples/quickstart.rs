//! Quickstart: test one upgrade of the mini Cassandra-like store with
//! DUPTester and print what the oracle saw.
//!
//! Run with `cargo run --example quickstart`.

use ds_upgrade::kvstore::KvStoreSystem;
use ds_upgrade::prelude::*;

fn main() {
    // CASSANDRA-4195's version pair: 1.1 -> 1.2, rolling.
    let case = TestCase {
        from: "1.1.0".parse::<VersionId>().expect("version parses"),
        to: "1.2.0".parse().expect("version parses"),
        scenario: Scenario::Rolling,
        workload: WorkloadSource::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    println!(
        "DUPTester: cassandra-mini {} -> {} [{}] with the {} workload…\n",
        case.from, case.to, case.scenario, case.workload
    );
    match case.run(&KvStoreSystem) {
        CaseOutcome::Pass => println!("upgrade went through cleanly"),
        CaseOutcome::InvalidWorkload(reason) => println!("workload invalid: {reason}"),
        CaseOutcome::Fail(observations) => {
            println!("UPGRADE FAILURE — evidence:");
            for o in &observations {
                println!("  - {o}   [{}]", o.classify());
            }
        }
    }

    // The same pair under a full-stop upgrade is clean: the gossip
    // incompatibility needs both versions live at once.
    let full_stop = TestCase {
        scenario: Scenario::FullStop,
        ..case
    };
    println!("\nSame pair, full-stop scenario…");
    match full_stop.run(&KvStoreSystem) {
        CaseOutcome::Pass => println!("upgrade went through cleanly (as the paper predicts)"),
        other => println!("unexpected: {other:?}"),
    }
}
