//! Run a full DUPTester campaign over all four mini distributed systems —
//! the workflow behind the paper's Table 5 — and print every distinct
//! upgrade failure found, plus recall against the seeded-bug catalog.
//!
//! Run with `cargo run --release --example find_upgrade_bugs`.

use ds_upgrade::prelude::*;
use ds_upgrade::tester::catalog;

fn main() {
    let systems: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(ds_upgrade::kvstore::KvStoreSystem),
        Box::new(ds_upgrade::dfs::DfsSystem),
        Box::new(ds_upgrade::mq::MqSystem),
        Box::new(ds_upgrade::coord::CoordSystem),
    ];
    let mut total = 0;
    for sut in &systems {
        println!("==== {} ====", sut.name());
        // The whole sweep through one entry point: every scenario, the
        // unit-test workloads, three seeds, one worker per CPU, and a
        // progress line every 50 cases.
        let report = Campaign::builder(sut.as_ref())
            .seeds([1, 2, 3])
            .scenarios([Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin])
            .observer(ProgressObserver::new(50))
            .run();
        print!("{}", report.render_table());
        print!("{}", report.metrics.render_timings());
        let (caught, missed) = catalog::recall(&report);
        println!(
            "seeded-bug recall: {}/{}",
            caught.len(),
            caught.len() + missed.len()
        );
        if !missed.is_empty() {
            println!("missed: {missed:?}");
        }
        println!();
        total += report.failures.len();
    }
    println!("{total} distinct upgrade failures found across 4 systems");
}
