//! Run a full DUPTester campaign over all four mini distributed systems —
//! the workflow behind the paper's Table 5 — and print every distinct
//! upgrade failure found, plus recall against the seeded-bug catalog.
//!
//! Run with `cargo run --release --example find_upgrade_bugs`.

use ds_upgrade::core::SystemUnderTest;
use ds_upgrade::tester::{catalog, run_campaign, CampaignConfig, Scenario};

fn main() {
    let config = CampaignConfig {
        seeds: vec![1, 2, 3],
        include_gap_two: false,
        scenarios: vec![Scenario::FullStop, Scenario::Rolling, Scenario::NewNodeJoin],
        use_unit_tests: true,
    };
    let systems: Vec<Box<dyn SystemUnderTest>> = vec![
        Box::new(ds_upgrade::kvstore::KvStoreSystem),
        Box::new(ds_upgrade::dfs::DfsSystem),
        Box::new(ds_upgrade::mq::MqSystem),
        Box::new(ds_upgrade::coord::CoordSystem),
    ];
    let mut total = 0;
    for sut in &systems {
        println!("==== {} ====", sut.name());
        let report = run_campaign(sut.as_ref(), &config);
        print!("{}", report.render_table());
        let (caught, missed) = catalog::recall(&report);
        println!(
            "seeded-bug recall: {}/{}",
            caught.len(),
            caught.len() + missed.len()
        );
        if !missed.is_empty() {
            println!("missed: {missed:?}");
        }
        println!();
        total += report.failures.len();
    }
    println!("{total} distinct upgrade failures found across 4 systems");
}
