//! Cross-crate consistency between the study and the tools: the properties
//! the paper derives from the study must hold for the artifacts built on it.

use ds_upgrade::core::{upgrade_pairs, VersionId};
use ds_upgrade::study::{dataset, findings, GapClass};
use ds_upgrade::tester::catalog::seeded_bugs;

/// Finding 9 drives DUPTester's pair enumeration: every seeded bug's pair
/// must be in the consecutive-pair set of its system's release history —
/// except the scenario-gated rollout bugs, whose pairs may need the gap-2
/// matrix (the multi-hop analog spans two releases by construction).
#[test]
fn every_seeded_bug_is_on_a_consecutive_pair() {
    let histories: Vec<(&str, Vec<VersionId>)> = vec![
        (
            "cassandra-mini",
            ds_upgrade::kvstore::KvStoreSystem::release_history(),
        ),
        ("hdfs-mini", ds_upgrade::dfs::DfsSystem::release_history()),
        ("kafka-mini", ds_upgrade::mq::MqSystem::release_history()),
        (
            "zookeeper-mini",
            ds_upgrade::coord::CoordSystem::release_history(),
        ),
    ];
    for bug in seeded_bugs() {
        let history = &histories
            .iter()
            .find(|(s, _)| *s == bug.system)
            .expect("system exists")
            .1;
        let pairs = upgrade_pairs(history, bug.scenario.is_some());
        assert!(
            pairs.contains(&(bug.from_version(), bug.to_version())),
            "{} is not on an enumerable pair",
            bug.ticket
        );
    }
}

/// The study says >80% of failures trigger on consecutive versions; our
/// seeded catalog (all consecutive) is consistent with that strategy.
#[test]
fn study_consecutive_share_supports_the_tester_strategy() {
    let ds = dataset();
    let f = findings(&ds);
    assert!(f.consecutive_pct > 80.0);
    // And the paper's extra 9%: gap-2 pairs.
    let gap2 = ds
        .iter()
        .filter(|r| matches!(r.gap, GapClass::Major2 | GapClass::Minor2))
        .count();
    let known = ds.iter().filter(|r| r.gap != GapClass::Unknown).count();
    let pct = 100.0 * gap2 as f64 / known as f64;
    assert!((pct - 9.2).abs() < 1.0, "gap-2 share {pct}");
}

/// Finding 11's determinism split shows up in the catalog too: the
/// timing-dependent seeded bugs are a small minority.
#[test]
fn nondeterministic_bugs_are_a_minority_in_both() {
    let ds = dataset();
    let study_nondet = ds.iter().filter(|r| !r.deterministic).count() as f64 / ds.len() as f64;
    assert!((study_nondet - 0.114).abs() < 0.01); // "the remaining 11%"

    let bugs = seeded_bugs();
    let catalog_nondet =
        bugs.iter().filter(|b| b.timing_dependent).count() as f64 / bugs.len() as f64;
    assert!(catalog_nondet < 0.25);
}

/// The named study records reference the same tickets the mini systems
/// re-implement, tying dataset to substrate.
#[test]
fn named_records_overlap_with_seeded_catalog() {
    let ds = dataset();
    let named: Vec<&str> = ds
        .iter()
        .filter(|r| !r.reconstructed)
        .map(|r| r.id.as_str())
        .collect();
    let seeded: Vec<&str> = seeded_bugs().iter().map(|b| b.ticket).collect();
    let overlap = named.iter().filter(|n| seeded.contains(n)).count();
    assert!(
        overlap >= 8,
        "only {overlap} named study records match seeded bugs: {named:?}"
    );
}
