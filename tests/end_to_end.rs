//! Cross-crate integration: the full pipeline from IDL text through the
//! wire runtime through the simulator, and tools cross-checking each other.

use ds_upgrade::checker::{compare_files, Severity};
use ds_upgrade::core::VersionId;
use ds_upgrade::idl::{lower, parse_proto};
use ds_upgrade::prelude::{CaseOutcome, Scenario, TestCase, WorkloadSpec};
use ds_upgrade::simnet::{Sim, SimDuration};
use ds_upgrade::wire::{proto, MessageValue, Value, WireError};

fn v(s: &str) -> VersionId {
    s.parse().unwrap()
}

/// The violation DUPChecker reports statically is exactly the decode error
/// the wire runtime produces dynamically: the two tools agree.
#[test]
fn checker_prediction_matches_runtime_behaviour() {
    let old_src = "message Checkpoint { required uint64 term = 1; }";
    let new_src = "message Checkpoint { required uint64 term = 1; required uint64 id = 2; }";
    let old_idl = parse_proto(old_src).unwrap();
    let new_idl = parse_proto(new_src).unwrap();

    // Statically: one error-severity violation.
    let violations = compare_files(&old_idl, &new_idl);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].severity(), Severity::Error);

    // Dynamically: bytes written under the old schema fail to decode under
    // the new one, with the matching error.
    let old_schema = lower(&old_idl).unwrap();
    let new_schema = lower(&new_idl).unwrap();
    let bytes = proto::encode(
        &old_schema,
        &MessageValue::new("Checkpoint").set("term", Value::U64(3)),
    )
    .unwrap();
    let err = proto::decode(&new_schema, "Checkpoint", &bytes).unwrap_err();
    assert!(matches!(err, WireError::MissingRequired { field, .. } if field == "id"));
}

/// Finding 9 in action: the consecutive-pair strategy finds a bug that a
/// same-version "upgrade" (the control) does not exhibit.
#[test]
fn consecutive_pair_strategy_vs_no_op_upgrade() {
    let buggy = TestCase {
        from: v("3.11.0"),
        to: v("4.0.0"),
        scenario: Scenario::FullStop,
        workload: WorkloadSpec::TranslatedUnit("testCompactTables".into()),
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    assert!(buggy.run(&ds_upgrade::kvstore::KvStoreSystem).is_failure());

    let no_op = TestCase {
        to: v("3.11.0"),
        ..buggy
    };
    assert!(!no_op.run(&ds_upgrade::kvstore::KvStoreSystem).is_failure());
}

/// The unit-test translator exposes a failure the stress workload cannot
/// (the CASSANDRA-16292 discovery path): DROP KEYSPACE is not a stress op.
#[test]
fn translated_unit_test_beats_stress_on_tombstone_bug() {
    let base = TestCase {
        from: v("3.0.0"),
        to: v("3.11.0"),
        scenario: Scenario::FullStop,
        workload: WorkloadSpec::Stress,
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    let stress = base.run(&ds_upgrade::kvstore::KvStoreSystem);
    let tombstone_in = |outcome: &CaseOutcome| match outcome {
        CaseOutcome::Fail(obs) => obs.iter().any(|o| o.to_string().contains("tombstone")),
        _ => false,
    };
    assert!(
        !tombstone_in(&stress),
        "stress should not trigger the tombstone bug"
    );

    let translated = TestCase {
        workload: WorkloadSpec::TranslatedUnit("testCachedPreparedStatements".into()),
        ..base
    };
    let outcome = translated.run(&ds_upgrade::kvstore::KvStoreSystem);
    assert!(
        tombstone_in(&outcome),
        "translated unit test must trigger it: {outcome:?}"
    );
}

/// The in-place unit-statement scheme (§6.1.2) exposes CASSANDRA-16301,
/// which needs internal APIs no client command reaches.
#[test]
fn unit_state_handoff_exposes_removed_strategy() {
    let case = TestCase {
        from: v("3.11.0"),
        to: v("4.0.0"),
        scenario: Scenario::FullStop,
        workload: WorkloadSpec::UnitStateHandoff("testUpdateKeyspace".into()),
        seed: 1,
        faults: Default::default(),
        durability: Default::default(),
    };
    match case.run(&ds_upgrade::kvstore::KvStoreSystem) {
        CaseOutcome::Fail(obs) => {
            assert!(obs
                .iter()
                .any(|o| o.to_string().contains("replication strategy")));
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

/// Determinism across the whole stack (the property behind Finding 11):
/// identical seeds give identical campaign evidence.
#[test]
fn full_case_runs_are_deterministic() {
    let case = TestCase {
        from: v("1.1.0"),
        to: v("1.2.0"),
        scenario: Scenario::Rolling,
        workload: WorkloadSpec::Stress,
        seed: 9,
        faults: Default::default(),
        durability: Default::default(),
    };
    let a = case.run(&ds_upgrade::kvstore::KvStoreSystem);
    let b = case.run(&ds_upgrade::kvstore::KvStoreSystem);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// The study's Finding 10 holds for the mini systems too: every seeded bug
/// reproduces with at most 3 nodes (the cluster sizes the SUTs declare).
#[test]
fn mini_systems_respect_the_three_node_bound() {
    use ds_upgrade::prelude::SystemUnderTest;
    assert!(ds_upgrade::kvstore::KvStoreSystem.cluster_size() <= 3);
    assert!(ds_upgrade::dfs::DfsSystem.cluster_size() <= 3);
    assert!(ds_upgrade::mq::MqSystem.cluster_size() <= 3);
    assert_eq!(ds_upgrade::coord::CoordSystem.cluster_size(), 3);
}

/// Smoke test of the umbrella crate's re-exports: a tiny simulation built
/// purely through `ds_upgrade::` paths.
#[test]
fn umbrella_reexports_work() {
    let mut sim = Sim::new(1);
    let node = sim.add_node(
        "host",
        "3.6.0",
        Box::new(ds_upgrade::coord::CoordNode::new(
            v("3.6.0"),
            ds_upgrade::core::NodeSetup::new(0, 1),
        )),
    );
    sim.start_node(node).unwrap();
    sim.run_for(SimDuration::from_secs(3));
    let resp = sim.rpc(node, b"STAT".to_vec().into(), SimDuration::from_secs(1));
    assert!(resp.is_some());
}
