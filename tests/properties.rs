//! Cross-crate property-based tests (proptest) over the core invariants.

use ds_upgrade::core::{upgrade_pairs, VersionGap, VersionId};
use ds_upgrade::idl::{lower, parse_proto};
use ds_upgrade::simnet::{FaultKind, HostStorage, SimRng, SimTime};
use ds_upgrade::tester::{
    apply_nudge, fault_plan_for, mutate, Corpus, CorpusEntry, Durability, FaultIntensity,
    MutationOp, OpenLoopSpec, PlanNudge, RolloutPlan, Scenario, SearchInput, WorkloadPlan,
    MAX_NUDGE_SHIFT_MS, MAX_SETTLE_SHIFT_MS, PLAN_WINDOW_MS,
};
use ds_upgrade::wire::{proto, Frame, MessageValue, Value};
use proptest::prelude::*;

fn arb_version() -> impl Strategy<Value = VersionId> {
    (0u32..10, 0u32..25, 0u32..10).prop_map(|(ma, mi, p)| VersionId::new(ma, mi, p))
}

proptest! {
    /// Version parsing round-trips through Display.
    #[test]
    fn version_display_parse_roundtrip(v in arb_version()) {
        let parsed: VersionId = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    /// Gap classification is symmetric in magnitude and `Same` iff equal.
    #[test]
    fn gap_classification_properties(a in arb_version(), b in arb_version()) {
        let ab = a.gap_to(&b);
        let ba = b.gap_to(&a);
        prop_assert_eq!(ab == VersionGap::Same, a == b);
        // Magnitudes agree in both directions.
        match (ab, ba) {
            (VersionGap::Major(x), VersionGap::Major(y)) => prop_assert_eq!(x, y),
            (VersionGap::Minor(x), VersionGap::Minor(y)) => prop_assert_eq!(x, y),
            (VersionGap::BugFixOnly, VersionGap::BugFixOnly) => {}
            (VersionGap::Same, VersionGap::Same) => {}
            other => prop_assert!(false, "asymmetric gaps {:?}", other),
        }
    }

    /// Consecutive-pair enumeration yields only gap-1 (or bug-fix) pairs and
    /// is ordered old -> new.
    #[test]
    fn upgrade_pairs_are_ordered_and_adjacent(
        versions in proptest::collection::vec(arb_version(), 2..8)
    ) {
        for (from, to) in upgrade_pairs(&versions, false) {
            prop_assert!(from < to);
        }
        // With gap-2 pairs included, the set only grows.
        let base = upgrade_pairs(&versions, false).len();
        let extended = upgrade_pairs(&versions, true).len();
        prop_assert!(extended >= base);
    }

    /// Frames round-trip arbitrary bodies.
    #[test]
    fn frame_roundtrip(version in any::<u32>(), kind in "[a-z_]{1,12}",
                       body in proptest::collection::vec(any::<u8>(), 0..256)) {
        let f = Frame::new(version, &kind, body);
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// A dynamically built message round-trips through a schema lowered
    /// from IDL text — the full text -> AST -> schema -> bytes pipeline.
    #[test]
    fn idl_to_wire_roundtrip(id in any::<u64>(), name in "[a-zA-Z0-9_]{0,24}",
                             tags in proptest::collection::vec(any::<u64>(), 0..12)) {
        let file = parse_proto(r#"
            message Record {
                required uint64 id = 1;
                optional string name = 2;
                repeated uint64 tags = 3;
            }
        "#).unwrap();
        let schema = lower(&file).unwrap();
        let mut value = MessageValue::new("Record")
            .set("id", Value::U64(id))
            .set("name", Value::Str(name.clone()));
        for t in &tags {
            value.push_mut("tags", Value::U64(*t));
        }
        let bytes = proto::encode(&schema, &value).unwrap();
        let back = proto::decode(&schema, "Record", &bytes).unwrap();
        prop_assert_eq!(back.get_u64("id").unwrap(), id);
        prop_assert_eq!(back.get_str("name").unwrap(), name.as_str());
        prop_assert_eq!(back.get_all("tags").len(), tags.len());
    }

    /// Decoding never panics on arbitrary bytes (malformed cross-version
    /// data must surface as errors, not crashes).
    #[test]
    fn decode_is_panic_free_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let file = parse_proto(r#"
            message Record {
                required uint64 id = 1;
                optional string name = 2;
                optional Inner inner = 3;
            }
            message Inner { required bool flag = 1; }
        "#).unwrap();
        let schema = lower(&file).unwrap();
        let _ = proto::decode(&schema, "Record", &bytes);
        let _ = ds_upgrade::wire::thrift::decode(&schema, "Record", &bytes);
        let _ = Frame::decode(&bytes);
    }

    /// Host storage behaves like a map with prefix listing.
    #[test]
    fn storage_model(ops in proptest::collection::vec(
        (prop_oneof![Just(0u8), Just(1), Just(2)], "[a-c]/[a-z]{1,4}",
         proptest::collection::vec(any::<u8>(), 0..16)), 0..32)) {
        let mut real = HostStorage::new();
        let mut model = std::collections::BTreeMap::<String, Vec<u8>>::new();
        for (op, path, data) in ops {
            match op {
                0 => {
                    real.write(&path, data.clone());
                    model.insert(path.clone(), data);
                }
                1 => {
                    real.append(&path, &data);
                    model.entry(path.clone()).or_default().extend_from_slice(&data);
                }
                _ => {
                    let a = real.delete(&path);
                    let b = model.remove(&path).is_some();
                    prop_assert_eq!(a, b);
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(real.read(k), Some(v.as_slice()));
        }
        prop_assert_eq!(real.file_count(), model.len());
        let listed = real.list("a/");
        let expected: Vec<&String> = model.keys().filter(|k| k.starts_with("a/")).collect();
        prop_assert_eq!(listed.len(), expected.len());
    }

    /// Crash-durability invariant 1: bytes flushed before a crash survive
    /// byte-identical, and whatever survives of an append stream is a prefix
    /// of what was written — a torn tail only ever shortens the unflushed
    /// suffix, whatever the seed or mode.
    #[test]
    fn flushed_bytes_survive_any_crash(
        seed in any::<u64>(),
        head in proptest::collection::vec(any::<u8>(), 0..48),
        tail in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        for mode in [Durability::Buffered, Durability::Torn] {
            let mut s = HostStorage::new();
            s.set_durability(mode);
            s.append("wal", &head);
            s.flush("wal");
            s.append("wal", &tail);
            s.crash_materialize(&mut SimRng::new(seed));
            let bytes = s.read("wal").expect("flushed file must survive");
            prop_assert!(bytes.starts_with(&head), "{mode}: durable prefix corrupted");
            let mut written = head.clone();
            written.extend_from_slice(&tail);
            prop_assert!(written.starts_with(bytes), "{mode}: survivor is not a prefix");
            if mode == Durability::Buffered {
                // All-or-nothing: no partial tails in buffered mode.
                prop_assert!(
                    bytes.len() == head.len() || bytes.len() == written.len(),
                    "buffered crash left a partial tail"
                );
            }
        }
    }

    /// Crash-durability invariant 2: materialization is a pure function of
    /// (storage state, RNG seed) — same inputs, byte-identical recovery
    /// image, whatever mix of writes, appends, and flushes preceded it.
    #[test]
    fn crash_materializer_is_pure(
        seed in any::<u64>(),
        ops in proptest::collection::vec(
            (prop_oneof![Just(0u8), Just(1), Just(2)], "[a-b]/[a-z]{1,3}",
             proptest::collection::vec(any::<u8>(), 0..12)), 0..24),
    ) {
        let build = || {
            let mut s = HostStorage::new();
            s.set_durability(Durability::Torn);
            for (op, path, data) in &ops {
                match op {
                    0 => s.write(path, data.clone()),
                    1 => s.append(path, data),
                    _ => s.flush(path),
                }
            }
            s
        };
        let mut a = build();
        let mut b = build();
        a.crash_materialize(&mut SimRng::new(seed));
        b.crash_materialize(&mut SimRng::new(seed));
        prop_assert_eq!(a.list(""), b.list(""));
        for path in a.list("") {
            prop_assert_eq!(a.read(&path), b.read(&path), "{}", path);
        }
    }

    /// Deterministic RNG streams: same seed, same draws; bounded draws stay
    /// in range.
    #[test]
    fn rng_determinism(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            let x = a.next_below(bound);
            prop_assert_eq!(x, b.next_below(bound));
            prop_assert!(x < bound);
        }
    }

    /// The study dataset never violates Finding 10's bound regardless of
    /// which slice you look at (exhaustive, but phrased as a property over
    /// random subsets to exercise the accessor paths).
    #[test]
    fn study_slices_respect_node_bound(start in 0usize..123, len in 0usize..123) {
        let ds = ds_upgrade::study::dataset();
        let end = (start + len).min(ds.len());
        for r in &ds[start..end] {
            prop_assert!(r.nodes_required <= 3);
        }
    }

    /// Fault plans are pure functions of (intensity, seed, cluster size):
    /// same inputs, byte-identical plan — the repro-string contract.
    #[test]
    fn fault_plans_are_pure(seed in any::<u64>(), nodes in 1u32..6) {
        for intensity in [FaultIntensity::Light, FaultIntensity::Heavy] {
            let a = fault_plan_for(intensity, Durability::Strict, seed, nodes, SimTime::ZERO).unwrap();
            let b = fault_plan_for(intensity, Durability::Strict, seed, nodes, SimTime::ZERO).unwrap();
            prop_assert_eq!(a.seed(), b.seed());
            prop_assert_eq!(a.actions(), b.actions());
            prop_assert_eq!(a.describe(), b.describe());
        }
        prop_assert!(fault_plan_for(FaultIntensity::Off, Durability::Strict, seed, nodes, SimTime::ZERO).is_none());
    }

    /// Every scheduled fault targets the booted cluster, partitions pair
    /// distinct nodes, and action times stay inside the harness's workload
    /// window — whatever the seed.
    #[test]
    fn fault_plan_targets_and_times_are_bounded(seed in any::<u64>(), nodes in 1u32..6) {
        let plan = fault_plan_for(FaultIntensity::Heavy, Durability::Strict, seed, nodes, SimTime::ZERO).unwrap();
        for action in plan.actions() {
            match action.kind {
                FaultKind::Partition(a, b) | FaultKind::Heal(a, b) => {
                    prop_assert!(a < nodes && b < nodes);
                    prop_assert_ne!(a, b);
                }
                FaultKind::Crash(x) | FaultKind::Restart(x) => prop_assert!(x < nodes),
                FaultKind::HealAll => {}
            }
            prop_assert!(action.at.as_millis() <= 58_000);
        }
    }

    /// A faulted simulation trace is deterministic in (sim seed, plan):
    /// identical runs agree on every global counter.
    #[test]
    fn faulted_sim_counters_are_deterministic(seed in any::<u64>()) {
        use ds_upgrade::simnet::{Ctx, Endpoint, Process, Sim, SimDuration, StepResult};
        use bytes::Bytes;

        struct Pinger(u32);
        impl Process for Pinger {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) -> StepResult {
                ctx.set_timer(SimDuration::from_millis(20), 1);
                Ok(())
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Endpoint, _p: &[u8]) -> StepResult {
                Ok(())
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: u64) -> StepResult {
                ctx.send(Endpoint::Node(self.0), Bytes::from_static(b"ping"));
                ctx.set_timer(SimDuration::from_millis(20), 1);
                Ok(())
            }
        }

        let run = || {
            let mut sim = Sim::new(seed);
            let a = sim.add_node("host-a", "v1", Box::new(Pinger(1)));
            let b = sim.add_node("host-b", "v1", Box::new(Pinger(0)));
            sim.start_node(a).unwrap();
            sim.start_node(b).unwrap();
            sim.install_fault_plan(fault_plan_for(FaultIntensity::Heavy, Durability::Strict, seed, 2, SimTime::ZERO).unwrap());
            sim.run_for(SimDuration::from_millis(800));
            (sim.events_processed(), sim.messages_delivered(), sim.faults_injected())
        };
        prop_assert_eq!(run(), run());
    }

    /// Mutation operators are pure functions of `(input, rng state)`: the
    /// same derivation yields the same mutant, the mutant keeps the parent's
    /// seed (mutants never reseed), and every shift stays within the nudge
    /// bound.
    #[test]
    fn search_mutations_are_pure_seeded_and_bounded(
        rng_seed in any::<u64>(),
        streams in proptest::collection::vec(any::<u64>(), 1..4),
        parent_seed in any::<u64>(),
    ) {
        let parent = SearchInput::from_seed(parent_seed);
        for op in MutationOp::ALL {
            let derive = || {
                let mut rng = SimRng::new(rng_seed);
                for s in &streams {
                    rng = rng.split(*s);
                }
                rng
            };
            let a = mutate(&parent, op, &mut derive());
            let b = mutate(&parent, op, &mut derive());
            prop_assert_eq!(a, b, "same derivation must yield the same mutant");
            prop_assert_eq!(a.seed, parent.seed, "mutants never change the seed");
            let bound = MAX_NUDGE_SHIFT_MS as i64;
            prop_assert!(a.nudge.action_shift_ms.abs() <= bound);
            prop_assert!(a.nudge.crash_shift_ms.abs() <= bound);
            prop_assert!(a.nudge.settle_shift_ms.abs() <= MAX_SETTLE_SHIFT_MS as i64);
            prop_assert!(a.nudge.burst_shift_ms.abs() <= bound);
            if op == MutationOp::SwapReorderFates {
                prop_assert_ne!(a.nudge.fate_salt, 0, "fate swap must re-roll");
            }
            if op == MutationOp::NudgeRolloutPlan {
                prop_assert_ne!(a.nudge.step_swap_salt, 0, "plan nudge must swap");
            }
            if op == MutationOp::ReRankHotKeys {
                prop_assert_ne!(a.nudge.key_rank_salt, 0, "re-rank must re-roll");
            }
            if op == MutationOp::MoveArrivalChurn {
                prop_assert_ne!(a.nudge.arrival_churn_salt, 0, "churn must re-roll");
            }
        }
    }

    /// However extreme the nudge, every action and crash point of the
    /// nudged plan stays inside `[base, base + PLAN_WINDOW_MS]`, and the
    /// relative order of actions is preserved.
    #[test]
    fn nudged_plan_times_stay_in_window_and_ordered(
        seed in any::<u64>(),
        action_shift_ms in -200_000i64..200_000,
        crash_shift_ms in -200_000i64..200_000,
        fate_salt in any::<u64>(),
        base_ms in 0u64..60_000,
    ) {
        let base = SimTime::from_millis(base_ms);
        let plan = fault_plan_for(FaultIntensity::Heavy, Durability::Buffered, seed, 4, base)
            .expect("heavy+buffered always yields a plan");
        let nudge = PlanNudge {
            action_shift_ms,
            crash_shift_ms,
            fate_salt,
            ..PlanNudge::default()
        };
        let nudged = apply_nudge(&plan, &nudge, base);

        let lo = base.as_millis();
        let hi = lo + PLAN_WINDOW_MS;
        for action in nudged.actions() {
            prop_assert!(action.at.as_millis() >= lo && action.at.as_millis() <= hi);
        }
        for point in nudged.crash_points() {
            prop_assert!(point.after.as_millis() >= lo && point.after.as_millis() <= hi);
            prop_assert!(point.not_after.as_millis() >= lo && point.not_after.as_millis() <= hi);
            prop_assert!(point.after <= point.not_after);
        }
        let before = plan.actions();
        let after = nudged.actions();
        prop_assert_eq!(before.len(), after.len());
        for i in 0..before.len() {
            for j in 0..before.len() {
                if before[i].at <= before[j].at {
                    prop_assert!(after[i].at <= after[j].at, "uniform shift must preserve order");
                }
            }
        }
    }

    /// Every (scenario, cluster size, version pair, seed) in range compiles
    /// to a rollout plan that passes validation and round-trips through its
    /// rendered `plan=` form.
    #[test]
    fn compiled_rollout_plans_are_valid_and_round_trip(
        seed in any::<u64>(),
        n in 1u32..6,
        a in arb_version(),
        b in arb_version(),
        mid in arb_version(),
    ) {
        let (from, to) = if a < b {
            (a, b)
        } else if b < a {
            (b, a)
        } else {
            // Equal draws: synthesize a strictly newer `to`.
            (a, VersionId::new(a.major + 1, 0, 0))
        };
        let mut catalog = vec![from, mid, to];
        catalog.sort();
        catalog.dedup();
        let mut plan = RolloutPlan::new();
        for scenario in Scenario::extended() {
            plan.compile(scenario, from, to, &catalog, n, seed);
            prop_assert!(
                plan.validate(n).is_ok(),
                "{}: {:?} for plan {}", scenario, plan.validate(n), plan.render()
            );
            let parsed = RolloutPlan::parse(&plan.render()).expect("rendered plans parse");
            prop_assert_eq!(&parsed, &plan, "{} round trip", scenario);
        }
    }

    /// `NudgeRolloutPlan`'s effect ([`RolloutPlan::nudge`]) is pure and
    /// validity-preserving for arbitrary — even wildly out-of-range —
    /// nudges, on every scenario's compiled plan.
    #[test]
    fn plan_nudges_preserve_validity(
        seed in any::<u64>(),
        n in 1u32..6,
        settle_shift_ms in -200_000i64..200_000,
        step_swap_salt in any::<u64>(),
    ) {
        let from: VersionId = "1.0.0".parse().unwrap();
        let mid: VersionId = "2.0.0".parse().unwrap();
        let to: VersionId = "3.0.0".parse().unwrap();
        let catalog = [from, mid, to];
        let nudge = PlanNudge {
            settle_shift_ms,
            step_swap_salt,
            ..PlanNudge::default()
        };
        for scenario in Scenario::extended() {
            let mut plan = RolloutPlan::new();
            plan.compile(scenario, from, to, &catalog, n, seed);
            let mut twin = plan.clone();
            plan.nudge(&nudge);
            twin.nudge(&nudge);
            prop_assert_eq!(&plan, &twin, "{}: nudge must be pure", scenario);
            prop_assert!(
                plan.validate(n).is_ok(),
                "{}: nudged plan invalid: {:?}", scenario, plan.validate(n)
            );
        }
    }

    /// Corpus insertion is commutative: the retained set is a pure function
    /// of the observation *set*, not the order observations arrive in.
    #[test]
    fn corpus_insertion_is_permutation_stable(
        raw in proptest::collection::vec((0u64..6, any::<u64>(), -30_000i64..30_000), 1..24),
    ) {
        // Payload fields derive from (digest, input) — as in the real search,
        // where an identical input folds an identical signature.
        let entries: Vec<CorpusEntry> = raw
            .iter()
            .map(|&(digest, seed, shift)| CorpusEntry {
                input: SearchInput {
                    seed,
                    nudge: PlanNudge { action_shift_ms: shift, ..PlanNudge::default() },
                },
                digest,
                new_bits: (digest as u32) ^ (seed as u32),
                bits_set: seed as u32 & 0xFF,
            })
            .collect();

        let fill = |order: &[CorpusEntry]| {
            let mut corpus = Corpus::new();
            for e in order {
                corpus.insert(*e);
            }
            corpus
        };
        let forward = fill(&entries);
        let mut reversed_order = entries.clone();
        reversed_order.reverse();
        let mut rotated_order = entries.clone();
        rotated_order.rotate_left(entries.len() / 2);
        prop_assert_eq!(&forward, &fill(&reversed_order));
        prop_assert_eq!(&forward, &fill(&rotated_order));
        prop_assert!(forward.len() <= entries.len());
        for e in forward.entries() {
            prop_assert!(forward.contains(e.digest));
        }
    }
}

fn arb_open_loop_spec() -> impl Strategy<Value = OpenLoopSpec> {
    (
        (1u64..5_000, 1u32..300, 0u8..5, 1u8..8),
        (1u32..400, 0u16..300, 0u8..101),
    )
        .prop_map(
            |(
                (clients, rate_per_sec, bursts, burst_factor),
                (keys, zipf_s_hundredths, read_pct),
            )| {
                OpenLoopSpec {
                    clients,
                    rate_per_sec,
                    bursts,
                    burst_factor,
                    keys,
                    zipf_s_hundredths,
                    read_pct,
                }
            },
        )
}

proptest! {
    /// The arrival process is a pure function of `(spec, seed, window)`:
    /// recompiling — even into a plan previously holding a different spec —
    /// replays the identical arrival stream, arrival times stay inside the
    /// window and never decrease, and indices are dense from zero.
    #[test]
    fn open_loop_arrival_process_is_pure(
        spec in arb_open_loop_spec(),
        other in arb_open_loop_spec(),
        seed in any::<u64>(),
        window_ms in 50u64..2_000,
    ) {
        let mut plan = WorkloadPlan::new();
        plan.compile(&spec, seed, window_ms);
        prop_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        let first: Vec<_> = plan
            .arrivals()
            .map(|a| (a.at_us, a.index, a.client, a.key, a.read))
            .collect();
        // Dirty the plan with an unrelated compile, then recompile.
        plan.compile(&other, seed ^ 1, window_ms / 2 + 1);
        plan.compile(&spec, seed, window_ms);
        let second: Vec<_> = plan
            .arrivals()
            .map(|a| (a.at_us, a.index, a.client, a.key, a.read))
            .collect();
        prop_assert_eq!(&first, &second, "recompile must replay the stream");

        let mut last = 0u64;
        for (i, &(at_us, index, client, key, _)) in first.iter().enumerate() {
            prop_assert_eq!(index, i as u64, "indices must be dense");
            prop_assert!(at_us < plan.window_us(), "arrival past the window");
            prop_assert!(at_us >= last, "arrival times must be monotone");
            prop_assert!(client < spec.clients, "client id out of range");
            prop_assert!(key < u64::from(spec.keys), "key out of range");
            last = at_us;
        }
    }

    /// With no burst segments, every interarrival gap is bounded: the
    /// integer exponential sampler caps its variate at ~22.2 times the
    /// mean, so consecutive arrivals are never more than `mean * 23 + 1`
    /// microseconds apart.
    #[test]
    fn open_loop_interarrivals_are_bounded(
        clients in 1u64..100_000,
        rate in 1u32..500,
        seed in any::<u64>(),
    ) {
        let spec = OpenLoopSpec { bursts: 0, clients, rate_per_sec: rate, ..OpenLoopSpec::small() };
        let mut plan = WorkloadPlan::new();
        plan.compile(&spec, seed, 2_000);
        let mean = 1_000_000u64 / u64::from(rate);
        let bound = mean * 23 + 1;
        let mut last = 0u64;
        for a in plan.arrivals() {
            prop_assert!(
                a.at_us - last <= bound,
                "gap {} exceeds bound {bound} (mean {mean})",
                a.at_us - last
            );
            last = a.at_us;
        }
    }

    /// The rank→key map is a seeded permutation: over the full rank range
    /// every key appears exactly once, and the permutation is stable in
    /// `(spec, seed)`.
    #[test]
    fn open_loop_rank_permutation_is_bijective(
        keys in 1u32..600,
        seed in any::<u64>(),
    ) {
        let spec = OpenLoopSpec { keys, ..OpenLoopSpec::small() };
        let mut plan = WorkloadPlan::new();
        plan.compile(&spec, seed, 100);
        let mut seen = vec![false; keys as usize];
        for rank in 0..u64::from(keys) {
            let key = plan.key_of_rank(rank);
            prop_assert!(key < u64::from(keys), "key {key} out of domain");
            prop_assert!(!seen[key as usize], "key {key} hit twice");
            seen[key as usize] = true;
        }
        let mut again = WorkloadPlan::new();
        again.compile(&spec, seed, 100);
        for rank in 0..u64::from(keys) {
            prop_assert_eq!(plan.key_of_rank(rank), again.key_of_rank(rank));
        }
    }
}
